"""The goal rules G1--G3 (Figure 9 of the paper).

The goal rules work on the goals.  They guide the evaluation of the view
concept ``D`` by deriving subgoals from the original goal ``x : D``; rules
G2 and G3 relate goals to facts: a path goal at ``s`` is only propagated to
individuals ``t`` that are explicitly recorded as ``R``-fillers of ``s`` in
the facts.

The primary premise of each rule is the goal; G2 and G3 must additionally be
re-examined when a new attribute fact arrives at the goal's subject, which
the engine's trigger routing takes care of.
"""

from __future__ import annotations

from typing import Optional

from ...concepts.syntax import And, ExistsPath
from ..constraints import Constraint, MembershipConstraint, Pair
from .base import Rule, RuleApplication, goal_path

__all__ = ["RuleG1", "RuleG2", "RuleG3", "GOAL_RULES"]


class RuleG1(Rule):
    """G1: from the goal ``s : C ⊓ D`` add the goals ``s : C`` and ``s : D``."""

    name = "G1"
    category = "goal"
    source = "goals"

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, MembershipConstraint) and isinstance(
            constraint.concept, And
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        concept = candidate.concept
        added = pair.add_goals(
            [
                MembershipConstraint(candidate.subject, concept.left),
                MembershipConstraint(candidate.subject, concept.right),
            ]
        )
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_goals=added,
                description=f"split goal {candidate}",
            )
        return None


class RuleG2(Rule):
    """G2: from goal ``s : ∃(R:C)`` (or ``≐ ε``) and fact ``s R t`` add goal ``t : C``."""

    name = "G2"
    category = "goal"
    source = "goals"
    retrigger_edge_at_subject = True

    def matches(self, constraint: Constraint) -> bool:
        if not isinstance(constraint, MembershipConstraint):
            return False
        path = goal_path(constraint.concept)
        return path is not None and len(path) == 1

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        step = goal_path(candidate.concept).head
        for filler in sorted(
            pair.attribute_fillers(candidate.subject, step.attribute),
            key=lambda individual: individual.sort_key(),
        ):
            added = pair.add_goals([MembershipConstraint(filler, step.concept)])
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_goals=added,
                    description=f"goal filler {filler} : {step.concept}",
                )
        return None


class RuleG3(Rule):
    """G3: from goal ``s : ∃(R:C)p`` (or ``≐ ε``, ``p ≠ ε``) and fact ``s R t`` add goals ``t : C`` and ``t : ∃p``."""

    name = "G3"
    category = "goal"
    source = "goals"
    retrigger_edge_at_subject = True

    def matches(self, constraint: Constraint) -> bool:
        if not isinstance(constraint, MembershipConstraint):
            return False
        path = goal_path(constraint.concept)
        return path is not None and len(path) >= 2

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        path = goal_path(candidate.concept)
        step = path.head
        tail = path.tail
        for filler in sorted(
            pair.attribute_fillers(candidate.subject, step.attribute),
            key=lambda individual: individual.sort_key(),
        ):
            added = pair.add_goals(
                [
                    MembershipConstraint(filler, step.concept),
                    MembershipConstraint(filler, ExistsPath(tail)),
                ]
            )
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_goals=added,
                    description=f"goal continuation at {filler}",
                )
        return None


GOAL_RULES = (RuleG1(), RuleG2(), RuleG3())
