"""Common infrastructure for the rules of the subsumption calculus.

Every rule of Figures 7--10 of the paper is implemented as a subclass of
:class:`Rule`.  A rule examines the current pair ``F : G`` (and the schema
``Σ`` for the schema rules) and, if an instance of the rule is applicable
*and would alter the pair*, applies it and reports a
:class:`RuleApplication` record.  The engine uses these records to build the
derivation trace (the reproduction of Figure 11) and the complexity
statistics of experiment E3.

Rules are written in *trigger style*: every rule names the constraint form
of its **primary premise** (:attr:`Rule.source` says whether it lives in the
facts or the goals, :meth:`Rule.matches` recognizes it) and implements
:meth:`Rule.apply_to`, which tries the rule with one given primary premise.
The naive full-scan :meth:`Rule.apply` simply probes every matching
constraint in the deterministic sorted order; the agenda-driven engine
(:mod:`repro.calculus.engine`) instead calls :meth:`Rule.apply_to` only on
constraints whose applicability may have changed since they were last
examined, which is what makes completion incremental.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...concepts.schema import Schema
from ...concepts.syntax import Concept, ExistsPath, Path, PathAgreement
from ..constraints import Constraint, Individual, Pair

__all__ = ["RuleApplication", "Rule", "goal_path"]


def goal_path(concept: Concept) -> Optional[Path]:
    """The non-empty path demanded by a goal ``∃p`` or ``∃p ≐ ε`` (else ``None``).

    Both goal forms demand the existence of a ``p``-chain, which is what the
    goal rules G2/G3, the composition rules C5/C6 and the schema rule S5 act
    on; they only differ in the fact the composition rules eventually build.
    """
    if isinstance(concept, ExistsPath) and not concept.path.is_empty:
        return concept.path
    if (
        isinstance(concept, PathAgreement)
        and concept.right.is_empty
        and not concept.left.is_empty
    ):
        return concept.left
    return None


@dataclass(frozen=True)
class RuleApplication:
    """The record of one rule firing.

    Attributes
    ----------
    rule:
        The paper's name of the rule (``"D1"`` ... ``"C6"``).
    category:
        One of ``"decomposition"``, ``"schema"``, ``"goal"``, ``"composition"``.
    added_facts / added_goals:
        The constraints that were newly added to the facts / goals.
    substitution:
        For the identification rules D3 and S4: the pair ``(old, new)`` of the
        replacement performed on the whole pair, else ``None``.
    description:
        A short human-readable account of the firing (used in traces).
    """

    rule: str
    category: str
    added_facts: Tuple[Constraint, ...] = ()
    added_goals: Tuple[Constraint, ...] = ()
    substitution: Optional[Tuple[Individual, Individual]] = None
    description: str = ""

    def __str__(self) -> str:
        parts = []
        if self.added_facts:
            parts.append("F += {" + ", ".join(str(c) for c in self.added_facts) + "}")
        if self.added_goals:
            parts.append("G += {" + ", ".join(str(c) for c in self.added_goals) + "}")
        if self.substitution is not None:
            old, new = self.substitution
            parts.append(f"[{old} := {new}]")
        detail = "; ".join(parts) if parts else self.description
        return f"{self.rule}: {detail}"


class Rule:
    """Base class of all calculus rules.

    Subclasses set :attr:`name`, :attr:`category` and :attr:`source`, and
    implement :meth:`matches` (does a constraint qualify as the rule's
    primary premise?) and :meth:`apply_to` (try the rule with one primary
    premise; mutate the pair and report the firing, or return ``None`` when
    the paper's side condition "the pair is altered when transformed
    according to the rule" fails for every instance with that premise).

    :meth:`apply` -- the naive whole-pair scan used by the ``naive=True``
    engine and the unit tests -- probes the primaries in the deterministic
    sorted order and fires the first applicable instance, which reproduces
    the seed implementation's behaviour exactly.
    """

    name: str = "?"
    category: str = "?"
    #: Whether the primary premise is a fact or a goal ("facts" / "goals").
    source: str = "facts"

    # -- retrigger channels -------------------------------------------------
    # A primary premise that was examined and found non-applicable is dropped
    # from the agenda; these flags declare which *deltas* can make such a
    # premise applicable again, so the engine knows when to requeue it.  A
    # premise with subject ``u`` is requeued when ...
    #: ... a new attribute fact ``u R t`` arrives.
    retrigger_edge_at_subject: bool = False
    #: ... a new membership fact ``u : C`` arrives.
    retrigger_membership_at_subject: bool = False
    #: ... a new path fact ``u p t`` arrives.
    retrigger_path_at_subject: bool = False
    #: ... a new membership fact ``t : C`` arrives at a successor ``t`` (some
    #: attribute fact ``u R t`` exists).
    retrigger_membership_at_successor: bool = False
    #: ... a new path fact ``t p' t'`` arrives at a successor ``t``.
    retrigger_path_at_successor: bool = False

    def matches(self, constraint: Constraint) -> bool:
        """``True`` iff ``constraint`` has the shape of this rule's primary premise."""
        raise NotImplementedError

    def apply_to(
        self, candidate: Constraint, pair: Pair, schema: Schema
    ) -> Optional[RuleApplication]:
        """Try the rule with ``candidate`` as primary premise."""
        raise NotImplementedError

    def candidates(self, pair: Pair) -> List[Constraint]:
        """All primary premises currently in the pair, in deterministic order."""
        pool = pair.sorted_facts() if self.source == "facts" else pair.sorted_goals()
        return [constraint for constraint in pool if self.matches(constraint)]

    def apply(self, pair: Pair, schema: Schema) -> Optional[RuleApplication]:
        """Fire the first applicable instance found by a full deterministic scan."""
        for candidate in self.candidates(pair):
            application = self.apply_to(candidate, pair, schema)
            if application is not None:
                return application
        return None

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"
