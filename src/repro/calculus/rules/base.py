"""Common infrastructure for the rules of the subsumption calculus.

Every rule of Figures 7--10 of the paper is implemented as a subclass of
:class:`Rule`.  A rule examines the current pair ``F : G`` (and the schema
``Σ`` for the schema rules) and, if an instance of the rule is applicable
*and would alter the pair*, applies it and reports a
:class:`RuleApplication` record.  The engine uses these records to build the
derivation trace (the reproduction of Figure 11) and the complexity
statistics of experiment E3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ...concepts.schema import Schema
from ..constraints import Constraint, Individual, Pair

__all__ = ["RuleApplication", "Rule"]


@dataclass(frozen=True)
class RuleApplication:
    """The record of one rule firing.

    Attributes
    ----------
    rule:
        The paper's name of the rule (``"D1"`` ... ``"C6"``).
    category:
        One of ``"decomposition"``, ``"schema"``, ``"goal"``, ``"composition"``.
    added_facts / added_goals:
        The constraints that were newly added to the facts / goals.
    substitution:
        For the identification rules D3 and S4: the pair ``(old, new)`` of the
        replacement performed on the whole pair, else ``None``.
    description:
        A short human-readable account of the firing (used in traces).
    """

    rule: str
    category: str
    added_facts: Tuple[Constraint, ...] = ()
    added_goals: Tuple[Constraint, ...] = ()
    substitution: Optional[Tuple[Individual, Individual]] = None
    description: str = ""

    def __str__(self) -> str:
        parts = []
        if self.added_facts:
            parts.append("F += {" + ", ".join(str(c) for c in self.added_facts) + "}")
        if self.added_goals:
            parts.append("G += {" + ", ".join(str(c) for c in self.added_goals) + "}")
        if self.substitution is not None:
            old, new = self.substitution
            parts.append(f"[{old} := {new}]")
        detail = "; ".join(parts) if parts else self.description
        return f"{self.rule}: {detail}"


class Rule:
    """Base class of all calculus rules.

    Subclasses set :attr:`name` and :attr:`category` and implement
    :meth:`apply`, which must

    * find the first applicable instance in a deterministic order,
    * mutate the pair accordingly, and
    * return a :class:`RuleApplication`, or ``None`` when no instance is
      applicable (the paper's side condition "the pair is altered when
      transformed according to the rule" is part of applicability).
    """

    name: str = "?"
    category: str = "?"

    def apply(self, pair: Pair, schema: Schema) -> Optional[RuleApplication]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"
