"""The decomposition rules D1--D7 (Figure 7 of the paper).

The decomposition rules work on the facts.  They break the initial fact
``x : C`` up into constraints involving only primitive concepts, primitive
attributes and singletons; rules D4 and D6 introduce fresh variables to
represent the objects along paths.
"""

from __future__ import annotations

from typing import Optional

from ...concepts.syntax import And, ExistsPath, PathAgreement, Singleton
from ..constraints import (
    AttributeConstraint,
    Constant,
    MembershipConstraint,
    Pair,
    PathConstraint,
)
from .base import Rule, RuleApplication

__all__ = [
    "RuleD1",
    "RuleD2",
    "RuleD3",
    "RuleD4",
    "RuleD5",
    "RuleD6",
    "RuleD7",
    "DECOMPOSITION_RULES",
]


class RuleD1(Rule):
    """D1: from ``s : C ⊓ D`` add ``s : C`` and ``s : D``."""

    name = "D1"
    category = "decomposition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for constraint in pair.sorted_facts():
            if not isinstance(constraint, MembershipConstraint):
                continue
            concept = constraint.concept
            if not isinstance(concept, And):
                continue
            additions = [
                MembershipConstraint(constraint.subject, concept.left),
                MembershipConstraint(constraint.subject, concept.right),
            ]
            added = pair.add_facts(additions)
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=f"decompose {constraint}",
                )
        return None


class RuleD2(Rule):
    """D2: from ``t R^-1 s`` add ``s R t`` (make converse edges explicit)."""

    name = "D2"
    category = "decomposition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for constraint in pair.sorted_facts():
            if not isinstance(constraint, AttributeConstraint):
                continue
            converse = AttributeConstraint(
                constraint.filler, constraint.attribute.inverse(), constraint.subject
            )
            added = pair.add_facts([converse])
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=f"invert {constraint}",
                )
        return None


class RuleD3(Rule):
    """D3: from ``y : {a}`` (``y`` a variable) identify ``y`` with the constant ``a``."""

    name = "D3"
    category = "decomposition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for constraint in pair.sorted_facts():
            if not isinstance(constraint, MembershipConstraint):
                continue
            if not isinstance(constraint.concept, Singleton):
                continue
            subject = constraint.subject
            if not subject.is_variable:
                continue
            constant = Constant(constraint.concept.constant)
            if pair.apply_substitution(subject, constant):
                return RuleApplication(
                    self.name,
                    self.category,
                    substitution=(subject, constant),
                    description=f"identify {subject} with constant {constant}",
                )
        return None


class RuleD4(Rule):
    """D4: from ``s : ∃p`` with no ``s p t`` in the facts, add ``s p y`` (``y`` fresh)."""

    name = "D4"
    category = "decomposition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for constraint in pair.sorted_facts():
            if not isinstance(constraint, MembershipConstraint):
                continue
            concept = constraint.concept
            if not isinstance(concept, ExistsPath) or concept.path.is_empty:
                continue
            subject = constraint.subject
            has_witness = any(
                isinstance(fact, PathConstraint)
                and fact.subject == subject
                and fact.path == concept.path
                for fact in pair.facts
            )
            if has_witness:
                continue
            fresh = pair.fresh_variable()
            added = pair.add_facts([PathConstraint(subject, concept.path, fresh)])
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=f"witness {constraint} with fresh {fresh}",
                )
        return None


class RuleD5(Rule):
    """D5: from ``s : ∃p ≐ ε`` add the loop constraint ``s p s``."""

    name = "D5"
    category = "decomposition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for constraint in pair.sorted_facts():
            if not isinstance(constraint, MembershipConstraint):
                continue
            concept = constraint.concept
            if not isinstance(concept, PathAgreement):
                continue
            if not concept.right.is_empty or concept.left.is_empty:
                continue
            added = pair.add_facts(
                [PathConstraint(constraint.subject, concept.left, constraint.subject)]
            )
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=f"loop for {constraint}",
                )
        return None


class RuleD6(Rule):
    """D6: decompose the first step of a path constraint of length ≥ 2.

    From ``s (R:C) p t`` (``p ≠ ε``), unless some ``t'`` already has
    ``s R t'``, ``t' : C`` and ``t' p t`` in the facts, add
    ``s R y``, ``y : C`` and ``y p t`` for a fresh variable ``y``.
    """

    name = "D6"
    category = "decomposition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for constraint in pair.sorted_facts():
            if not isinstance(constraint, PathConstraint):
                continue
            if len(constraint.path) < 2:
                continue
            head = constraint.path.head
            tail = constraint.path.tail
            subject, target = constraint.subject, constraint.filler
            witnesses = pair.attribute_fillers(subject, head.attribute)
            satisfied = any(
                MembershipConstraint(candidate, head.concept) in pair.facts
                and PathConstraint(candidate, tail, target) in pair.facts
                for candidate in witnesses
            )
            if satisfied:
                continue
            fresh = pair.fresh_variable()
            added = pair.add_facts(
                [
                    AttributeConstraint(subject, head.attribute, fresh),
                    MembershipConstraint(fresh, head.concept),
                    PathConstraint(fresh, tail, target),
                ]
            )
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=f"unfold {constraint} via fresh {fresh}",
                )
        return None


class RuleD7(Rule):
    """D7: from ``s (R:C) t`` (a single-step path) add ``s R t`` and ``t : C``."""

    name = "D7"
    category = "decomposition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for constraint in pair.sorted_facts():
            if not isinstance(constraint, PathConstraint):
                continue
            if len(constraint.path) != 1:
                continue
            step = constraint.path.head
            additions = [
                AttributeConstraint(constraint.subject, step.attribute, constraint.filler),
                MembershipConstraint(constraint.filler, step.concept),
            ]
            added = pair.add_facts(additions)
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=f"flatten {constraint}",
                )
        return None


DECOMPOSITION_RULES = (
    RuleD1(),
    RuleD2(),
    RuleD3(),
    RuleD4(),
    RuleD5(),
    RuleD6(),
    RuleD7(),
)
