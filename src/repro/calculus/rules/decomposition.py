"""The decomposition rules D1--D7 (Figure 7 of the paper).

The decomposition rules work on the facts.  They break the initial fact
``x : C`` up into constraints involving only primitive concepts, primitive
attributes and singletons; rules D4 and D6 introduce fresh variables to
represent the objects along paths.

Each rule's primary premise is the fact it decomposes, so the incremental
engine re-examines a rule only when a new fact of the matching shape
appears (or after a substitution rewrites the pair).
"""

from __future__ import annotations

from typing import Optional

from ...concepts.syntax import And, ExistsPath, PathAgreement, Singleton
from ..constraints import (
    AttributeConstraint,
    Constant,
    Constraint,
    MembershipConstraint,
    Pair,
    PathConstraint,
)
from .base import Rule, RuleApplication

__all__ = [
    "RuleD1",
    "RuleD2",
    "RuleD3",
    "RuleD4",
    "RuleD5",
    "RuleD6",
    "RuleD7",
    "DECOMPOSITION_RULES",
]


class RuleD1(Rule):
    """D1: from ``s : C ⊓ D`` add ``s : C`` and ``s : D``."""

    name = "D1"
    category = "decomposition"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, MembershipConstraint) and isinstance(
            constraint.concept, And
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        concept = candidate.concept
        additions = [
            MembershipConstraint(candidate.subject, concept.left),
            MembershipConstraint(candidate.subject, concept.right),
        ]
        added = pair.add_facts(additions)
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_facts=added,
                description=f"decompose {candidate}",
            )
        return None


class RuleD2(Rule):
    """D2: from ``t R^-1 s`` add ``s R t`` (make converse edges explicit)."""

    name = "D2"
    category = "decomposition"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, AttributeConstraint)

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        converse = AttributeConstraint(
            candidate.filler, candidate.attribute.inverse(), candidate.subject
        )
        added = pair.add_facts([converse])
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_facts=added,
                description=f"invert {candidate}",
            )
        return None


class RuleD3(Rule):
    """D3: from ``y : {a}`` (``y`` a variable) identify ``y`` with the constant ``a``."""

    name = "D3"
    category = "decomposition"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return (
            isinstance(constraint, MembershipConstraint)
            and isinstance(constraint.concept, Singleton)
            and constraint.subject.is_variable
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        subject = candidate.subject
        constant = Constant(candidate.concept.constant)
        if pair.apply_substitution(subject, constant):
            return RuleApplication(
                self.name,
                self.category,
                substitution=(subject, constant),
                description=f"identify {subject} with constant {constant}",
            )
        return None


class RuleD4(Rule):
    """D4: from ``s : ∃p`` with no ``s p t`` in the facts, add ``s p y`` (``y`` fresh)."""

    name = "D4"
    category = "decomposition"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return (
            isinstance(constraint, MembershipConstraint)
            and isinstance(constraint.concept, ExistsPath)
            and not constraint.concept.path.is_empty
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        subject = candidate.subject
        if pair.has_path_fact(subject, candidate.concept.path):
            return None
        fresh = pair.fresh_variable()
        added = pair.add_facts([PathConstraint(subject, candidate.concept.path, fresh)])
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_facts=added,
                description=f"witness {candidate} with fresh {fresh}",
            )
        return None


class RuleD5(Rule):
    """D5: from ``s : ∃p ≐ ε`` add the loop constraint ``s p s``."""

    name = "D5"
    category = "decomposition"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return (
            isinstance(constraint, MembershipConstraint)
            and isinstance(constraint.concept, PathAgreement)
            and constraint.concept.right.is_empty
            and not constraint.concept.left.is_empty
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        added = pair.add_facts(
            [PathConstraint(candidate.subject, candidate.concept.left, candidate.subject)]
        )
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_facts=added,
                description=f"loop for {candidate}",
            )
        return None


class RuleD6(Rule):
    """D6: decompose the first step of a path constraint of length ≥ 2.

    From ``s (R:C) p t`` (``p ≠ ε``), unless some ``t'`` already has
    ``s R t'``, ``t' : C`` and ``t' p t`` in the facts, add
    ``s R y``, ``y : C`` and ``y p t`` for a fresh variable ``y``.
    """

    name = "D6"
    category = "decomposition"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, PathConstraint) and len(constraint.path) >= 2

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        head = candidate.path.head
        tail = candidate.path.tail
        subject, target = candidate.subject, candidate.filler
        witnesses = pair.attribute_fillers(subject, head.attribute)
        satisfied = any(
            MembershipConstraint(witness, head.concept) in pair.facts
            and PathConstraint(witness, tail, target) in pair.facts
            for witness in witnesses
        )
        if satisfied:
            return None
        fresh = pair.fresh_variable()
        added = pair.add_facts(
            [
                AttributeConstraint(subject, head.attribute, fresh),
                MembershipConstraint(fresh, head.concept),
                PathConstraint(fresh, tail, target),
            ]
        )
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_facts=added,
                description=f"unfold {candidate} via fresh {fresh}",
            )
        return None


class RuleD7(Rule):
    """D7: from ``s (R:C) t`` (a single-step path) add ``s R t`` and ``t : C``."""

    name = "D7"
    category = "decomposition"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, PathConstraint) and len(constraint.path) == 1

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        step = candidate.path.head
        additions = [
            AttributeConstraint(candidate.subject, step.attribute, candidate.filler),
            MembershipConstraint(candidate.filler, step.concept),
        ]
        added = pair.add_facts(additions)
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_facts=added,
                description=f"flatten {candidate}",
            )
        return None


DECOMPOSITION_RULES = (
    RuleD1(),
    RuleD2(),
    RuleD3(),
    RuleD4(),
    RuleD5(),
    RuleD6(),
    RuleD7(),
)
