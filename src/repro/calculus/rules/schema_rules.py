"""The schema rules S1--S5 (Figure 8) plus the domain-propagation repair S6.

The schema rules add information derivable from the schema ``Σ`` and the
current facts:

* S1 propagates declared superclasses (``A1 ⊑ A2``),
* S2 propagates attribute typings of classes (``A1 ⊑ ∀P.A2``),
* S3 propagates attribute domain/range declarations (``P ⊑ A1 × A2``),
* S4 identifies fillers of functional attributes (``A ⊑ (≤1 P)``),
* S5 creates a filler for a *necessary* attribute (``A ⊑ ∃P``) -- but only
  when a goal asks for a path starting with ``P``, which is the control that
  keeps the procedure polynomial (Section 4.1).

**S6 (reproduction addition).** The paper's canonical-interpretation
construction gives every individual ``s`` with ``s : A ∈ F`` and
``A ⊑ ∃P ∈ Σ`` an implicit ``P``-filler ``u``; for the typing axiom
``P ⊑ A1 × A2`` to hold in that structure, ``s`` must also be an instance of
``A1``.  The rules of the paper never derive ``s : A1`` in this situation
(the proof of Proposition 4.5 dismisses the case), so without a repair the
calculus misses entailments such as ``{A ⊑ ∃P, P ⊑ A1×A2} ⊨ A ⊑ A1``.
Rule S6 adds exactly this propagation; it preserves soundness (the inference
is semantically valid) and polynomiality (at most one new membership
constraint per fact/axiom combination).  It can be disabled to study the
paper's literal rule set (see :class:`repro.calculus.engine.CompletionEngine`).

The primary premise of S1/S2/S4/S6 is a primitive membership fact, of S3 an
attribute fact and of S5 a path goal; the engine additionally re-examines S2
and S4 when a new edge arrives at the subject, and S5 when a new primitive
membership arrives at the goal's subject.
"""

from __future__ import annotations

from typing import Optional

from ...concepts.schema import Schema
from ...concepts.syntax import Attribute, Primitive
from ..constraints import (
    AttributeConstraint,
    Constraint,
    MembershipConstraint,
    Pair,
    constraint_sort_key,
)
from .base import Rule, RuleApplication, goal_path

__all__ = [
    "RuleS1",
    "RuleS2",
    "RuleS3",
    "RuleS4",
    "RuleS5",
    "RuleS6",
    "SCHEMA_RULES",
    "PAPER_SCHEMA_RULES",
]


def _is_primitive_membership(constraint: Constraint) -> bool:
    return isinstance(constraint, MembershipConstraint) and isinstance(
        constraint.concept, Primitive
    )


class RuleS1(Rule):
    """S1: from ``s : A1`` and ``A1 ⊑ A2 ∈ Σ`` add ``s : A2``."""

    name = "S1"
    category = "schema"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return _is_primitive_membership(constraint)

    def apply_to(self, candidate, pair: Pair, schema: Schema) -> Optional[RuleApplication]:
        for superclass in sorted(schema.primitive_superclasses(candidate.concept.name)):
            added = pair.add_facts(
                [MembershipConstraint(candidate.subject, Primitive(superclass))]
            )
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=f"{candidate.concept.name} ⊑ {superclass}",
                )
        return None


class RuleS2(Rule):
    """S2: from ``s : A1``, ``s P t`` and ``A1 ⊑ ∀P.A2 ∈ Σ`` add ``t : A2``."""

    name = "S2"
    category = "schema"
    source = "facts"
    retrigger_edge_at_subject = True

    def matches(self, constraint: Constraint) -> bool:
        return _is_primitive_membership(constraint)

    def apply_to(self, candidate, pair: Pair, schema: Schema) -> Optional[RuleApplication]:
        restrictions = schema.value_restrictions(candidate.concept.name)
        if not restrictions:
            return None
        for attribute, filler_class in sorted(restrictions):
            edges = sorted(
                pair.fact_edge_constraints(candidate.subject, Attribute(attribute)),
                key=constraint_sort_key,
            )
            for fact in edges:
                added = pair.add_facts(
                    [MembershipConstraint(fact.filler, Primitive(filler_class))]
                )
                if added:
                    return RuleApplication(
                        self.name,
                        self.category,
                        added_facts=added,
                        description=(
                            f"{candidate.concept.name} ⊑ ∀{attribute}.{filler_class}"
                        ),
                    )
        return None


class RuleS3(Rule):
    """S3: from ``s P t`` and ``P ⊑ A1 × A2 ∈ Σ`` add ``s : A1`` and ``t : A2``."""

    name = "S3"
    category = "schema"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, AttributeConstraint) and not constraint.attribute.inverted

    def apply_to(self, candidate, pair: Pair, schema: Schema) -> Optional[RuleApplication]:
        typing = schema.attribute_typing(candidate.attribute.name)
        if typing is None:
            return None
        domain, range_ = typing
        added = pair.add_facts(
            [
                MembershipConstraint(candidate.subject, Primitive(domain)),
                MembershipConstraint(candidate.filler, Primitive(range_)),
            ]
        )
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_facts=added,
                description=f"{candidate.attribute.name} ⊑ {domain} × {range_}",
            )
        return None


class RuleS4(Rule):
    """S4: identify fillers of a functional attribute.

    From ``s : A``, ``s P y``, ``s P t`` with ``A ⊑ (≤1 P) ∈ Σ`` and ``y`` a
    variable distinct from ``t``, replace ``y`` by ``t`` throughout the pair.
    """

    name = "S4"
    category = "schema"
    source = "facts"
    retrigger_edge_at_subject = True

    def matches(self, constraint: Constraint) -> bool:
        return _is_primitive_membership(constraint)

    def apply_to(self, candidate, pair: Pair, schema: Schema) -> Optional[RuleApplication]:
        functional = schema.functional_attributes(candidate.concept.name)
        if not functional:
            return None
        for attribute_name in sorted(functional):
            fillers = sorted(
                pair.attribute_fillers(candidate.subject, Attribute(attribute_name)),
                key=lambda individual: individual.sort_key(),
            )
            if len(fillers) < 2:
                continue
            # Prefer keeping a constant: merge the first variable into the
            # first other filler (constants sort before variables).
            variables = [filler for filler in fillers if filler.is_variable]
            if not variables:
                continue
            keep_candidates = [f for f in fillers if f != variables[-1]]
            old, new = variables[-1], keep_candidates[0]
            if pair.apply_substitution(old, new):
                return RuleApplication(
                    self.name,
                    self.category,
                    substitution=(old, new),
                    description=(
                        f"{candidate.concept.name} ⊑ (≤1 {attribute_name}): {old} := {new}"
                    ),
                )
        return None


class RuleS5(Rule):
    """S5: create a filler for a necessary attribute demanded by a goal.

    From a goal ``s : ∃(P:C)p`` or ``s : ∃(P:C)p ≐ ε``, if no ``s P t`` is in
    the facts and there is an ``A`` with ``s : A`` in the facts and
    ``A ⊑ ∃P ∈ Σ``, add ``s P y`` for a fresh variable ``y``.
    """

    name = "S5"
    category = "schema"
    source = "goals"
    retrigger_membership_at_subject = True

    def matches(self, constraint: Constraint) -> bool:
        return (
            isinstance(constraint, MembershipConstraint)
            and goal_path(constraint.concept) is not None
        )

    def apply_to(self, candidate, pair: Pair, schema: Schema) -> Optional[RuleApplication]:
        subject = candidate.subject
        head = goal_path(candidate.concept).head
        attribute = head.attribute
        if attribute.inverted:
            return None
        if pair.attribute_fillers(subject, attribute):
            return None
        has_necessity = any(
            isinstance(fact.concept, Primitive)
            and schema.is_necessary_for(fact.concept.name, attribute.name)
            for fact in pair.fact_memberships_at(subject)
        )
        if not has_necessity:
            return None
        fresh = pair.fresh_variable()
        added = pair.add_facts([AttributeConstraint(subject, attribute, fresh)])
        if added:
            return RuleApplication(
                self.name,
                self.category,
                added_facts=added,
                description=f"necessary {attribute.name} filler {fresh} for {subject}",
            )
        return None


class RuleS6(Rule):
    """S6 (repair): from ``s : A``, ``A ⊑ ∃P ∈ Σ`` and ``P ⊑ A1 × A2 ∈ Σ`` add ``s : A1``.

    See the module docstring for why this semantically valid propagation is
    needed to make the canonical interpretation a Σ-model in the presence of
    implicit (``u``) fillers.
    """

    name = "S6"
    category = "schema"
    source = "facts"

    def matches(self, constraint: Constraint) -> bool:
        return _is_primitive_membership(constraint)

    def apply_to(self, candidate, pair: Pair, schema: Schema) -> Optional[RuleApplication]:
        for attribute in sorted(schema.necessary_attributes(candidate.concept.name)):
            typing = schema.attribute_typing(attribute)
            if typing is None:
                continue
            domain, _range = typing
            added = pair.add_facts(
                [MembershipConstraint(candidate.subject, Primitive(domain))]
            )
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=(
                        f"{candidate.concept.name} ⊑ ∃{attribute}, "
                        f"{attribute} ⊑ {domain} × {_range}"
                    ),
                )
        return None


#: The paper's literal rule set (Figure 8).
PAPER_SCHEMA_RULES = (RuleS1(), RuleS2(), RuleS3(), RuleS4(), RuleS5())

#: The default rule set of the reproduction: Figure 8 plus the S6 repair.
SCHEMA_RULES = PAPER_SCHEMA_RULES + (RuleS6(),)
