"""The composition rules C1--C6 (Figure 10 of the paper).

The composition rules compose complex facts from simpler ones, directed by
the goals; this amounts to a bottom-up evaluation of the view concept ``D``
over the facts ``F``.  The subsumption test of Theorem 4.7 succeeds exactly
when this evaluation manages to compose the fact ``o : D``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ...concepts.syntax import And, ExistsPath, Path, PathAgreement, Top
from ..constraints import Individual, MembershipConstraint, Pair, PathConstraint
from .base import Rule, RuleApplication

__all__ = ["RuleC1", "RuleC2", "RuleC3", "RuleC4", "RuleC5", "RuleC6", "COMPOSITION_RULES"]


def _membership_goals(pair: Pair) -> Iterator[MembershipConstraint]:
    for constraint in pair.sorted_goals():
        if isinstance(constraint, MembershipConstraint):
            yield constraint


class RuleC1(Rule):
    """C1: if ``s : C`` and ``s : D`` are facts and ``s : C ⊓ D`` is a goal, add the fact ``s : C ⊓ D``."""

    name = "C1"
    category = "composition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for goal in _membership_goals(pair):
            concept = goal.concept
            if not isinstance(concept, And):
                continue
            if (
                MembershipConstraint(goal.subject, concept.left) in pair.facts
                and MembershipConstraint(goal.subject, concept.right) in pair.facts
            ):
                added = pair.add_facts([MembershipConstraint(goal.subject, concept)])
                if added:
                    return RuleApplication(
                        self.name, self.category, added_facts=added,
                        description=f"compose {goal}",
                    )
        return None


class RuleC2(Rule):
    """C2: if ``s : ⊤`` is a goal, add the fact ``s : ⊤``."""

    name = "C2"
    category = "composition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for goal in _membership_goals(pair):
            if not isinstance(goal.concept, Top):
                continue
            added = pair.add_facts([MembershipConstraint(goal.subject, goal.concept)])
            if added:
                return RuleApplication(
                    self.name, self.category, added_facts=added, description=str(goal)
                )
        return None


class RuleC3(Rule):
    """C3: if ``s : ∃p`` is a goal and ``p = ε`` or some ``s p t`` is a fact, add the fact ``s : ∃p``."""

    name = "C3"
    category = "composition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for goal in _membership_goals(pair):
            concept = goal.concept
            if not isinstance(concept, ExistsPath):
                continue
            witnessed = concept.path.is_empty or any(
                isinstance(fact, PathConstraint)
                and fact.subject == goal.subject
                and fact.path == concept.path
                for fact in pair.facts
            )
            if not witnessed:
                continue
            added = pair.add_facts([MembershipConstraint(goal.subject, concept)])
            if added:
                return RuleApplication(
                    self.name, self.category, added_facts=added, description=str(goal)
                )
        return None


class RuleC4(Rule):
    """C4: if ``s : ∃p ≐ ε`` is a goal and ``p = ε`` or ``s p s`` is a fact, add the fact ``s : ∃p ≐ ε``."""

    name = "C4"
    category = "composition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for goal in _membership_goals(pair):
            concept = goal.concept
            if not isinstance(concept, PathAgreement) or not concept.right.is_empty:
                continue
            witnessed = concept.left.is_empty or (
                PathConstraint(goal.subject, concept.left, goal.subject) in pair.facts
            )
            if not witnessed:
                continue
            added = pair.add_facts([MembershipConstraint(goal.subject, concept)])
            if added:
                return RuleApplication(
                    self.name, self.category, added_facts=added, description=str(goal)
                )
        return None


def _goal_paths_with_tail(pair: Pair) -> Iterator[Tuple[Individual, Path]]:
    """Goals ``s : ∃(R:C)p`` or ``s : ∃(R:C)p ≐ ε`` whose path has length ≥ 2."""
    for goal in _membership_goals(pair):
        concept = goal.concept
        if isinstance(concept, ExistsPath) and len(concept.path) >= 2:
            yield goal.subject, concept.path
        elif (
            isinstance(concept, PathAgreement)
            and concept.right.is_empty
            and len(concept.left) >= 2
        ):
            yield goal.subject, concept.left


def _goal_paths_single(pair: Pair) -> Iterator[Tuple[Individual, Path]]:
    """Goals ``s : ∃(R:C)`` or ``s : ∃(R:C) ≐ ε`` whose path has length exactly 1."""
    for goal in _membership_goals(pair):
        concept = goal.concept
        if isinstance(concept, ExistsPath) and len(concept.path) == 1:
            yield goal.subject, concept.path
        elif (
            isinstance(concept, PathAgreement)
            and concept.right.is_empty
            and len(concept.left) == 1
        ):
            yield goal.subject, concept.left


class RuleC5(Rule):
    """C5: compose a multi-step path fact.

    If a goal ``s : ∃(R:C)p`` (or ``≐ ε``) exists and there are ``t'``, ``t``
    with ``s R t'``, ``t' : C`` and ``t' p t`` in the facts, add the fact
    ``s (R:C)p t``.
    """

    name = "C5"
    category = "composition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for subject, path in _goal_paths_with_tail(pair):
            head, tail = path.head, path.tail
            for intermediate in sorted(
                pair.attribute_fillers(subject, head.attribute),
                key=lambda individual: individual.sort_key(),
            ):
                if MembershipConstraint(intermediate, head.concept) not in pair.facts:
                    continue
                for fact in pair.sorted_facts():
                    if (
                        isinstance(fact, PathConstraint)
                        and fact.subject == intermediate
                        and fact.path == tail
                    ):
                        added = pair.add_facts([PathConstraint(subject, path, fact.filler)])
                        if added:
                            return RuleApplication(
                                self.name,
                                self.category,
                                added_facts=added,
                                description=f"compose path at {subject} via {intermediate}",
                            )
        return None


class RuleC6(Rule):
    """C6: compose a single-step path fact.

    If a goal ``s : ∃(R:C)`` (or ``≐ ε``) exists and ``s R t`` and ``t : C``
    are facts, add the fact ``s (R:C) t``.
    """

    name = "C6"
    category = "composition"

    def apply(self, pair: Pair, schema) -> Optional[RuleApplication]:
        for subject, path in _goal_paths_single(pair):
            step = path.head
            for filler in sorted(
                pair.attribute_fillers(subject, step.attribute),
                key=lambda individual: individual.sort_key(),
            ):
                if MembershipConstraint(filler, step.concept) not in pair.facts:
                    continue
                added = pair.add_facts([PathConstraint(subject, path, filler)])
                if added:
                    return RuleApplication(
                        self.name,
                        self.category,
                        added_facts=added,
                        description=f"compose step at {subject} via {filler}",
                    )
        return None


COMPOSITION_RULES = (RuleC1(), RuleC2(), RuleC3(), RuleC4(), RuleC5(), RuleC6())
