"""The composition rules C1--C6 (Figure 10 of the paper).

The composition rules compose complex facts from simpler ones, directed by
the goals; this amounts to a bottom-up evaluation of the view concept ``D``
over the facts ``F``.  The subsumption test of Theorem 4.7 succeeds exactly
when this evaluation manages to compose the fact ``o : D``.

The primary premise of each rule is the goal that directs the composition;
the engine re-examines a goal when new facts arrive that could complete one
of its instances (conjunct memberships for C1, path facts for C3/C4, edges
and continuations for C5/C6).
"""

from __future__ import annotations

from typing import Optional

from ...concepts.syntax import And, ExistsPath, PathAgreement, Top
from ..constraints import Constraint, MembershipConstraint, Pair, PathConstraint
from .base import Rule, RuleApplication, goal_path

__all__ = ["RuleC1", "RuleC2", "RuleC3", "RuleC4", "RuleC5", "RuleC6", "COMPOSITION_RULES"]


class RuleC1(Rule):
    """C1: if ``s : C`` and ``s : D`` are facts and ``s : C ⊓ D`` is a goal, add the fact ``s : C ⊓ D``."""

    name = "C1"
    category = "composition"
    source = "goals"
    retrigger_membership_at_subject = True

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, MembershipConstraint) and isinstance(
            constraint.concept, And
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        concept = candidate.concept
        if (
            MembershipConstraint(candidate.subject, concept.left) in pair.facts
            and MembershipConstraint(candidate.subject, concept.right) in pair.facts
        ):
            added = pair.add_facts([MembershipConstraint(candidate.subject, concept)])
            if added:
                return RuleApplication(
                    self.name, self.category, added_facts=added,
                    description=f"compose {candidate}",
                )
        return None


class RuleC2(Rule):
    """C2: if ``s : ⊤`` is a goal, add the fact ``s : ⊤``."""

    name = "C2"
    category = "composition"
    source = "goals"

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, MembershipConstraint) and isinstance(
            constraint.concept, Top
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        added = pair.add_facts([MembershipConstraint(candidate.subject, candidate.concept)])
        if added:
            return RuleApplication(
                self.name, self.category, added_facts=added, description=str(candidate)
            )
        return None


class RuleC3(Rule):
    """C3: if ``s : ∃p`` is a goal and ``p = ε`` or some ``s p t`` is a fact, add the fact ``s : ∃p``."""

    name = "C3"
    category = "composition"
    source = "goals"
    retrigger_path_at_subject = True

    def matches(self, constraint: Constraint) -> bool:
        return isinstance(constraint, MembershipConstraint) and isinstance(
            constraint.concept, ExistsPath
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        concept = candidate.concept
        witnessed = concept.path.is_empty or pair.has_path_fact(
            candidate.subject, concept.path
        )
        if not witnessed:
            return None
        added = pair.add_facts([MembershipConstraint(candidate.subject, concept)])
        if added:
            return RuleApplication(
                self.name, self.category, added_facts=added, description=str(candidate)
            )
        return None


class RuleC4(Rule):
    """C4: if ``s : ∃p ≐ ε`` is a goal and ``p = ε`` or ``s p s`` is a fact, add the fact ``s : ∃p ≐ ε``."""

    name = "C4"
    category = "composition"
    source = "goals"
    retrigger_path_at_subject = True

    def matches(self, constraint: Constraint) -> bool:
        return (
            isinstance(constraint, MembershipConstraint)
            and isinstance(constraint.concept, PathAgreement)
            and constraint.concept.right.is_empty
        )

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        concept = candidate.concept
        witnessed = concept.left.is_empty or (
            PathConstraint(candidate.subject, concept.left, candidate.subject) in pair.facts
        )
        if not witnessed:
            return None
        added = pair.add_facts([MembershipConstraint(candidate.subject, concept)])
        if added:
            return RuleApplication(
                self.name, self.category, added_facts=added, description=str(candidate)
            )
        return None


class RuleC5(Rule):
    """C5: compose a multi-step path fact.

    If a goal ``s : ∃(R:C)p`` (or ``≐ ε``) exists and there are ``t'``, ``t``
    with ``s R t'``, ``t' : C`` and ``t' p t`` in the facts, add the fact
    ``s (R:C)p t``.
    """

    name = "C5"
    category = "composition"
    source = "goals"
    retrigger_edge_at_subject = True
    retrigger_membership_at_successor = True
    retrigger_path_at_successor = True

    def matches(self, constraint: Constraint) -> bool:
        if not isinstance(constraint, MembershipConstraint):
            return False
        path = goal_path(constraint.concept)
        return path is not None and len(path) >= 2

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        subject = candidate.subject
        path = goal_path(candidate.concept)
        head, tail = path.head, path.tail
        for intermediate in sorted(
            pair.attribute_fillers(subject, head.attribute),
            key=lambda individual: individual.sort_key(),
        ):
            if MembershipConstraint(intermediate, head.concept) not in pair.facts:
                continue
            for fact in pair.path_facts_with(intermediate, tail):
                added = pair.add_facts([PathConstraint(subject, path, fact.filler)])
                if added:
                    return RuleApplication(
                        self.name,
                        self.category,
                        added_facts=added,
                        description=f"compose path at {subject} via {intermediate}",
                    )
        return None


class RuleC6(Rule):
    """C6: compose a single-step path fact.

    If a goal ``s : ∃(R:C)`` (or ``≐ ε``) exists and ``s R t`` and ``t : C``
    are facts, add the fact ``s (R:C) t``.
    """

    name = "C6"
    category = "composition"
    source = "goals"
    retrigger_edge_at_subject = True
    retrigger_membership_at_successor = True

    def matches(self, constraint: Constraint) -> bool:
        if not isinstance(constraint, MembershipConstraint):
            return False
        path = goal_path(constraint.concept)
        return path is not None and len(path) == 1

    def apply_to(self, candidate, pair: Pair, schema) -> Optional[RuleApplication]:
        subject = candidate.subject
        path = goal_path(candidate.concept)
        step = path.head
        for filler in sorted(
            pair.attribute_fillers(subject, step.attribute),
            key=lambda individual: individual.sort_key(),
        ):
            if MembershipConstraint(filler, step.concept) not in pair.facts:
                continue
            added = pair.add_facts([PathConstraint(subject, path, filler)])
            if added:
                return RuleApplication(
                    self.name,
                    self.category,
                    added_facts=added,
                    description=f"compose step at {subject} via {filler}",
                )
        return None


COMPOSITION_RULES = (RuleC1(), RuleC2(), RuleC3(), RuleC4(), RuleC5(), RuleC6())
