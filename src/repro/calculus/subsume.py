"""Deciding Σ-subsumption of ``QL`` concepts (Theorem 4.7).

The decision procedure:

1. normalize ``C`` and ``D`` so that every path agreement has the form
   ``∃p ≐ ε`` (Section 4, preliminaries);
2. start from the pair ``{x : C} : {x : D}`` and compute its completion with
   the rules of Figures 7--10 under the paper's control strategy;
3. report ``C ⊑_Σ D`` iff the completed facts contain ``o : D`` (where ``o``
   is the individual carrying the original goal, possibly renamed by the
   identification rules) or the facts contain a clash (in which case ``C``
   is Σ-unsatisfiable and subsumed by everything).

:class:`SubsumptionResult` additionally exposes the derivation trace, the
clash witnesses, the completion statistics and -- when subsumption fails --
the canonical countermodel of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..concepts.normalize import normalize_concept
from ..concepts.schema import Schema
from ..concepts.syntax import Concept
from ..semantics.canonical import canonical_interpretation
from ..semantics.interpretation import Interpretation
from .clash import Clash, find_clashes
from .constraints import Individual, MembershipConstraint, Pair
from .engine import CompletionEngine, CompletionResult
from .rules import RuleApplication

__all__ = ["SubsumptionResult", "decide_subsumption", "subsumes"]


@dataclass
class SubsumptionResult:
    """The full outcome of one subsumption test ``C ⊑_Σ D``.

    Attributes
    ----------
    subsumed:
        The decision of Theorem 4.7.
    query / view:
        The normalized concepts actually fed to the calculus.
    completion:
        The completed pair, trace and statistics.
    root_goal_subject:
        The individual ``o`` whose membership in ``D`` was tested.
    clashes:
        The clash witnesses, if any (non-empty implies ``subsumed``).
    goal_established:
        ``True`` iff ``o : D`` was composed in the facts (the non-degenerate
        way of establishing subsumption).
    """

    subsumed: bool
    query: Concept
    view: Concept
    schema: Schema
    completion: CompletionResult
    root_goal_subject: Individual
    clashes: Tuple[Clash, ...]
    goal_established: bool

    @property
    def trace(self) -> Tuple[RuleApplication, ...]:
        """The sequence of rule applications of the completion (Figure 11)."""
        return self.completion.trace

    @property
    def statistics(self):
        """Counters of the completion run (rule firings, individuals, ...)."""
        return self.completion.statistics

    def countermodel(self) -> Optional[Interpretation]:
        """The canonical Σ-countermodel when subsumption does not hold.

        Proposition 4.5/4.6: if the completed facts are clash-free and
        ``o : D`` is not among them, the canonical interpretation of the
        facts is a Σ-model in which the root object belongs to ``C`` but not
        to ``D``.  Returns ``None`` when subsumption holds.
        """
        if self.subsumed:
            return None
        from ..concepts.visitors import constants as concept_constants
        from ..concepts.visitors import primitive_attributes, primitive_concepts

        extra_concepts = primitive_concepts(self.query) | primitive_concepts(self.view)
        extra_attributes = primitive_attributes(self.query) | primitive_attributes(self.view)
        extra_constants = concept_constants(self.query) | concept_constants(self.view)
        return canonical_interpretation(
            self.completion.facts,
            self.schema,
            extra_constants=extra_constants,
            extra_concepts=extra_concepts,
            extra_attributes=extra_attributes,
        )


def decide_subsumption(
    query: Concept,
    view: Concept,
    schema: Optional[Schema] = None,
    *,
    use_repair_rule: bool = True,
    keep_trace: bool = True,
    naive: bool = False,
) -> SubsumptionResult:
    """Decide ``query ⊑_Σ view`` and return the full :class:`SubsumptionResult`.

    ``naive=True`` runs the completion with the full-scan engine of the seed
    implementation instead of the indexed agenda; both produce the same
    result (see :class:`repro.calculus.engine.CompletionEngine`).
    """
    schema = schema if schema is not None else Schema.empty()
    normalized_query = normalize_concept(query)
    normalized_view = normalize_concept(view)

    engine = CompletionEngine(
        use_repair_rule=use_repair_rule, keep_trace=keep_trace, naive=naive
    )
    pair = Pair.initial(normalized_query, normalized_view)
    completion = engine.complete(pair, schema)

    root = pair.root_goal_subject
    goal_constraint = MembershipConstraint(root, normalized_view)
    goal_established = goal_constraint in pair.facts
    clashes = tuple(find_clashes(pair, schema))

    return SubsumptionResult(
        subsumed=goal_established or bool(clashes),
        query=normalized_query,
        view=normalized_view,
        schema=schema,
        completion=completion,
        root_goal_subject=root,
        clashes=clashes,
        goal_established=goal_established,
    )


def subsumes(
    query: Concept,
    view: Concept,
    schema: Optional[Schema] = None,
    *,
    use_repair_rule: bool = True,
    naive: bool = False,
) -> bool:
    """``True`` iff ``query ⊑_Σ view`` (every instance of the query is in the view)."""
    return decide_subsumption(
        query, view, schema, use_repair_rule=use_repair_rule, keep_trace=False, naive=naive
    ).subsumed
