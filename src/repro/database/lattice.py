"""A classified lattice (subsumption DAG) over materialized views.

``SemanticQueryOptimizer.subsuming_views`` originally scanned the whole
catalog and ran one subsumption check per surviving view, so the cost of
*every* query grew linearly with the catalog.  This module organizes the
views themselves into the transitive reduction of their Σ-subsumption
order -- the classic TBox-classification structure -- so that matching can
prune whole subtrees:

* **Nodes** group Σ-equivalent views (one node per equivalence class); an
  edge ``parent → child`` means ``child.concept ⊑_Σ parent.concept`` with no
  node strictly in between (covering relation).
* **Insertion** is the standard two-phase traversal: find the most specific
  subsumers (the parents), then the most general subsumees below them (the
  children), splice the node in and drop the parent→child edges that became
  transitive.  A view equivalent to an existing node just joins that node.
* **Matching** (:meth:`ViewLattice.subsumers`) walks top-down from the
  roots.  Soundness of pruning: if ``Q ⋢ V`` then ``Q ⋢ V'`` for every
  descendant ``V' ⊑ V`` (otherwise ``Q ⊑ V' ⊑ V``).  The answer set is
  therefore upward closed, and a node needs a subsumption check only when
  *all* of its parents subsume the query -- the traversal touches exactly
  the answer set plus its failing frontier, independent of catalog size.
* **Removal** (:meth:`ViewLattice.remove`) splices a node out and re-links
  its parents to its children unless another path already connects them,
  preserving the transitive reduction.

All subsumption questions are delegated to a
:class:`~repro.core.checker.SubsumptionChecker` supplied by the caller, so
the lattice automatically benefits from the checker's signature filter,
interned-id memo tables and the shared decision cache.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..concepts.syntax import Concept

__all__ = ["LatticeMatchStats", "LatticeNode", "ViewLattice"]


@dataclass
class LatticeMatchStats:
    """Bookkeeping of one :meth:`ViewLattice.subsumers` traversal.

    ``checks`` and ``signature_skips`` count *nodes* consulted (one check
    covers every view of an equivalence class); ``pruned_views`` counts the
    views that were never examined at all because an ancestor already failed.
    """

    checks: int = 0
    signature_skips: int = 0
    nodes_visited: int = 0
    pruned_views: int = 0


class LatticeNode:
    """One equivalence class of views: a concept plus the views that share it."""

    __slots__ = ("concept", "views", "parents", "children")

    def __init__(self, concept: Concept) -> None:
        self.concept = concept
        self.views: List[object] = []
        self.parents: Set["LatticeNode"] = set()
        self.children: Set["LatticeNode"] = set()

    def __repr__(self) -> str:
        names = ",".join(getattr(view, "name", "?") for view in self.views)
        return f"LatticeNode([{names}])"


class ViewLattice:
    """The incremental, transitive-reduced subsumption DAG over views.

    The lattice stores whatever objects expose ``.name`` and ``.concept``
    (in practice :class:`~repro.database.views.MaterializedView`); concepts
    must already be normalized (they are, by ``MaterializedView``'s
    constructor).
    """

    def __init__(self) -> None:
        self._node_of: Dict[str, LatticeNode] = {}
        self._roots: Set[LatticeNode] = set()

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._node_of)

    @property
    def node_count(self) -> int:
        """Number of equivalence classes currently in the lattice."""
        return len(set(self._node_of.values()))

    @property
    def roots(self) -> Tuple[LatticeNode, ...]:
        """The maximal nodes (no registered view subsumes them)."""
        return tuple(self._roots)

    def node_of(self, name: str) -> Optional[LatticeNode]:
        """The node holding the view of that name, if registered."""
        return self._node_of.get(name)

    def parents_of(self, name: str) -> Set[str]:
        """Names of the views in the direct-subsumer nodes of ``name``'s node."""
        node = self._node_of[name]
        return {view.name for parent in node.parents for view in parent.views}

    def children_of(self, name: str) -> Set[str]:
        """Names of the views in the direct-subsumee nodes of ``name``'s node."""
        node = self._node_of[name]
        return {view.name for child in node.children for view in child.views}

    def nodes(self) -> List[LatticeNode]:
        """The unique nodes in deterministic (first-registration) order."""
        seen: Set[int] = set()
        ordered: List[LatticeNode] = []
        for node in self._node_of.values():
            if id(node) not in seen:
                seen.add(id(node))
                ordered.append(node)
        return ordered

    def _nodes(self) -> Set[LatticeNode]:
        return set(self._node_of.values())

    def ancestor_closure(self, nodes) -> Dict[int, LatticeNode]:
        """The given nodes plus all of their ancestors, keyed by ``id()``.

        The maintenance engine flushes a delta batch by walking exactly this
        sub-DAG in topological order: the closure is parent-closed by
        construction, so every in-degree computed inside it is the node's
        true in-degree and Kahn's algorithm needs no special cases.
        """
        closure: Dict[int, LatticeNode] = {}
        frontier = [node for node in nodes if node is not None]
        while frontier:
            node = frontier.pop()
            if id(node) in closure:
                continue
            closure[id(node)] = node
            frontier.extend(node.parents)
        return closure

    # -- insertion -----------------------------------------------------------

    def insert(self, view, checker) -> None:
        """Classify ``view`` into the DAG (two-phase most-specific-subsumer search)."""
        if view.name in self._node_of:
            raise ValueError(f"view {view.name!r} is already classified")
        concept = view.concept

        subsumers = self._find_subsumers(concept, checker)
        parents = self._most_specific(subsumers)

        # A parent that is itself subsumed by the new concept is equivalent
        # (mutual subsumption): the view joins the existing node.  At most
        # one node per equivalence class exists, so the first hit suffices.
        for parent in parents:
            if checker.subsumes(parent.concept, concept):
                parent.views.append(view)
                self._node_of[view.name] = parent
                return

        children = self._find_subsumees(concept, checker, parents)

        node = LatticeNode(concept)
        node.views.append(view)
        node.parents = set(parents)
        node.children = set(children)
        for parent in parents:
            parent.children.add(node)
        for child in children:
            child.parents.add(node)
            self._roots.discard(child)
        # Edges parent → child that now route through the new node are
        # transitive; drop them to keep the reduction.
        for parent in parents:
            for child in children:
                if child in parent.children:
                    parent.children.discard(child)
                    child.parents.discard(parent)
        if not node.parents:
            self._roots.add(node)
        self._node_of[view.name] = node

    def classification_probe(self, concept: Concept, checker) -> None:
        """Run the two insertion traversals for ``concept`` without mutating.

        Executes exactly the subsumption questions :meth:`insert` would ask
        against the *current* (frozen) DAG -- the most-specific-subsumer
        search, the equivalence probes and the most-general-subsumee search
        -- but splices nothing in.  The point is cache warming: the batched
        classifier fans these probes over a worker pool against a frozen
        lattice, merges the workers' decision deltas, and then replays the
        plain sequential insertions, which find every frozen-DAG decision
        already answered.
        """
        subsumers = self._find_subsumers(concept, checker)
        parents = self._most_specific(subsumers)
        for parent in parents:
            if checker.subsumes(parent.concept, concept):
                return
        self._find_subsumees(concept, checker, parents)

    def _find_subsumers(self, concept: Concept, checker) -> Set[LatticeNode]:
        """All nodes ``N`` with ``concept ⊑ N.concept`` (pruned top-down search).

        If ``concept ⋢ N`` then ``concept ⋢ M`` for every descendant ``M`` of
        ``N``, so children of failing nodes are never visited (unless they
        are reachable through some subsuming parent).
        """
        subsumers: Set[LatticeNode] = set()
        seen: Set[LatticeNode] = set(self._roots)
        frontier = deque(self._roots)
        while frontier:
            node = frontier.popleft()
            if checker.subsumes(concept, node.concept):
                subsumers.add(node)
                for child in node.children:
                    if child not in seen:
                        seen.add(child)
                        frontier.append(child)
        return subsumers

    @staticmethod
    def _most_specific(subsumers: Set[LatticeNode]) -> List[LatticeNode]:
        """The minimal elements of an upward-closed subsumer set.

        Because the set is upward closed, "no child in the set" is equivalent
        to "no strict descendant in the set".
        """
        return [
            node
            for node in subsumers
            if not any(child in subsumers for child in node.children)
        ]

    def _find_subsumees(
        self, concept: Concept, checker, parents: List[LatticeNode]
    ) -> List[LatticeNode]:
        """The most general nodes ``M`` with ``M.concept ⊑ concept``.

        Candidates live strictly below every parent (a subsumee is below the
        new node, which sits below all parents), so the search starts at the
        parents' children -- or at the roots when the new node has no parent.
        Once a node is found to be a subsumee its descendants are skipped
        (they are subsumees too, but not most general); a failing node's
        children must still be visited, since ``M ⋢ concept`` says nothing
        about nodes below ``M``.
        """
        start: Set[LatticeNode] = set()
        if parents:
            for parent in parents:
                start.update(parent.children)
        else:
            start.update(self._roots)
        found: Set[LatticeNode] = set()
        seen: Set[LatticeNode] = set(start)
        frontier = deque(start)
        while frontier:
            node = frontier.popleft()
            if checker.subsumes(node.concept, concept):
                found.add(node)
                continue
            for child in node.children:
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        # Drop candidates below another candidate (reachable through it).
        return [
            node
            for node in found
            if not self._reachable_from_any(found - {node}, node)
        ]

    def _reachable_from_any(self, sources: Set[LatticeNode], target: LatticeNode) -> bool:
        frontier = deque(sources)
        seen = set(sources)
        while frontier:
            node = frontier.popleft()
            if node is target:
                return True
            for child in node.children:
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return False

    # -- removal -------------------------------------------------------------

    def remove(self, name: str) -> None:
        """Remove a view; splice its node out when the equivalence class empties.

        Spliced-out nodes re-link each (parent, child) pair unless another
        path still connects them, so the DAG remains the transitive
        reduction of the remaining views' subsumption order.
        """
        node = self._node_of.pop(name, None)
        if node is None:
            return
        node.views = [view for view in node.views if view.name != name]
        if node.views:
            return
        parents = list(node.parents)
        children = list(node.children)
        for parent in parents:
            parent.children.discard(node)
        for child in children:
            child.parents.discard(node)
        self._roots.discard(node)
        for parent in parents:
            for child in children:
                if not self._reachable_from_any({parent}, child):
                    parent.children.add(child)
                    child.parents.add(parent)
        for child in children:
            if not child.parents:
                self._roots.add(child)

    # -- matching ------------------------------------------------------------

    def subsumers(
        self, concept: Concept, checker, stats: Optional[LatticeMatchStats] = None
    ) -> List[object]:
        """All registered views whose concept subsumes ``concept``.

        Frontier-only top-down traversal: a node is evaluated exactly when
        its last parent has been found to subsume the query (roots are always
        evaluated); everything below a failing node is pruned without so much
        as a signature test.  The checker's ``quick_reject`` signature filter
        is consulted before each full check, mirroring the flat scan.
        """
        stats = stats if stats is not None else LatticeMatchStats()
        total_views = len(self._node_of)
        matches: List[object] = []
        examined_views = 0
        satisfied_parents: Dict[LatticeNode, int] = {}
        frontier = deque(self._roots)
        while frontier:
            node = frontier.popleft()
            stats.nodes_visited += 1
            examined_views += len(node.views)
            if checker.quick_reject(concept, node.concept):
                stats.signature_skips += 1
                continue
            stats.checks += 1
            if not checker.subsumes(concept, node.concept):
                continue
            matches.extend(node.views)
            for child in node.children:
                count = satisfied_parents.get(child, 0) + 1
                satisfied_parents[child] = count
                if count == len(child.parents):
                    frontier.append(child)
        stats.pruned_views += total_views - examined_views
        return matches

    # -- invariants (used by the tests) ---------------------------------------

    def check_invariants(self, checker) -> None:
        """Assert structural soundness of the DAG (edges, reduction, roots)."""
        nodes = self._nodes()
        assert self._roots == {node for node in nodes if not node.parents}
        for node in nodes:
            assert node.views, "empty equivalence class left in the lattice"
            for child in node.children:
                assert node in child.parents
                assert checker.subsumes(child.concept, node.concept)
                # Transitive reduction: no alternative path parent ⇝ child.
                others = set(node.children) - {child}
                assert not self._reachable_from_any(others, child)
            for parent in node.parents:
                assert node in parent.children
