"""Evaluating query classes and ``QL`` concepts over database states.

A query class retrieves the stored objects that satisfy its membership
condition (Section 2.2).  The evaluator splits the work the same way the
paper splits query definitions:

* the *structural part* (superclasses, derived paths, where equalities) is
  the ``QL`` concept produced by :mod:`repro.dl.abstraction`; its extension
  over the state-as-interpretation is computed with the set semantics
  evaluator;
* the *non-structural part* (the ``constraint`` clause) is translated to a
  first-order formula and checked per candidate object.

Because the structural extension is a superset of the full answer set
(Proposition 3.1 in executable form), candidates only ever need to be
*filtered*; this is also exactly how the optimizer exploits a subsuming
materialized view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Set

from ..concepts.syntax import Concept
from ..dl.abstraction import query_class_to_concept
from ..dl.ast import DLSchema, QueryClassDecl
from ..dl.fol_translation import THIS, constraint_to_fol
from ..fol.evaluate import evaluate as fol_evaluate
from ..fol.syntax import (
    AndF,
    BinaryAtom,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    OrF,
    UnaryAtom,
)
from ..semantics.evaluate import concept_extension
from .store import DatabaseState

__all__ = ["EvaluationStatistics", "QueryEvaluator"]


def _formula_constants(formula: Formula) -> Set[str]:
    """The constant names occurring in a first-order formula."""
    found: Set[str] = set()

    def walk(node: Formula) -> None:
        """Accumulate constants reachable from ``node`` into ``found``."""
        if isinstance(node, (UnaryAtom,)):
            if isinstance(node.term, Const):
                found.add(node.term.name)
        elif isinstance(node, (BinaryAtom,)):
            for term in (node.first, node.second):
                if isinstance(term, Const):
                    found.add(term.name)
        elif isinstance(node, Equals):
            for term in (node.first, node.second):
                if isinstance(term, Const):
                    found.add(term.name)
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, (AndF, OrF, Implies)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (Exists, Forall)):
            walk(node.body)

    walk(formula)
    return found


@dataclass
class EvaluationStatistics:
    """Counters describing one query evaluation (candidates vs answers)."""

    candidates_examined: int = 0
    structural_matches: int = 0
    answers: int = 0
    used_view: Optional[str] = None


class QueryEvaluator:
    """Evaluates query classes over a :class:`~repro.database.store.DatabaseState`."""

    def __init__(self, dl_schema: Optional[DLSchema] = None) -> None:
        self.dl_schema = dl_schema

    # -- structural part ---------------------------------------------------------

    def concept_answers(
        self, concept: Concept, state: DatabaseState, candidates: Optional[Iterable[str]] = None
    ) -> FrozenSet[str]:
        """The objects of the state that belong to the extension of a ``QL`` concept.

        When ``candidates`` is given, only those objects are considered (this
        is the "filter the materialized view" code path of the optimizer);
        otherwise all stored objects are candidates.
        """
        interpretation = state.to_interpretation()
        extension = concept_extension(concept, interpretation)
        pool = frozenset(candidates) if candidates is not None else state.objects
        return frozenset(pool) & extension

    # -- full query classes ---------------------------------------------------------

    def answers(
        self,
        query: QueryClassDecl,
        state: DatabaseState,
        candidates: Optional[Iterable[str]] = None,
        statistics: Optional[EvaluationStatistics] = None,
    ) -> FrozenSet[str]:
        """The answer set of a query class over a database state.

        Answer objects are existing objects deduced as instances of the query
        class: they satisfy the structural concept *and* the constraint
        clause (if any).
        """
        statistics = statistics if statistics is not None else EvaluationStatistics()
        concept = query_class_to_concept(query, self.dl_schema)
        if query.constraint is not None:
            constraint = constraint_to_fol(query.constraint, {"this": THIS})
            # Constants mentioned by the constraint (e.g. "Aspirin") must
            # denote; unknown ones become fresh elements distinct from every
            # stored object, as the Unique Name Assumption prescribes.
            interpretation = state.to_interpretation(constants=_formula_constants(constraint))
        else:
            constraint = None
            interpretation = state.to_interpretation()
        pool = frozenset(candidates) if candidates is not None else state.objects
        statistics.candidates_examined = len(pool)

        structural = frozenset(pool) & concept_extension(concept, interpretation)
        statistics.structural_matches = len(structural)

        if constraint is None:
            statistics.answers = len(structural)
            return structural
        answers: Set[str] = set()
        for candidate in structural:
            if fol_evaluate(constraint, interpretation, {THIS: candidate}):
                answers.add(candidate)
        statistics.answers = len(answers)
        return frozenset(answers)

    def answers_from_source(
        self, source: str, state: DatabaseState, query_name: Optional[str] = None
    ) -> FrozenSet[str]:
        """Convenience: parse a ``QueryClass`` declaration and evaluate it."""
        from ..dl.parser import parse_schema

        parsed = parse_schema(source)
        if not parsed.query_classes:
            raise ValueError("the source contains no QueryClass declaration")
        if query_name is None:
            query_name = next(iter(parsed.query_classes))
        return self.answers(parsed.query_classes[query_name], state)
