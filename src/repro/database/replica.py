"""Snapshot read replicas: generation-stamped state shipping over sockets.

The async tier (PR 5) bounded read staleness *inside* one process; this
module ships the same serve-from-generation model across process
boundaries so reader processes scale horizontally.  A
:class:`ReplicaServer` attaches to a live primary
(:class:`~repro.database.store.DatabaseState` + its view catalog) as a
mutation-log listener and serves each connecting replica a **full
snapshot plus a typed-delta tail**:

* the snapshot leg is a pickled :class:`~repro.database.store.StateSnapshot`
  together with the schema and the catalog's structural identity (the
  same ``(name, normalized concept)`` pairs the WAL's checkpoints
  record), everything a fresh process needs to rebuild state, catalog
  and extents from nothing;
* the delta leg is a stream of
  :class:`~repro.database.wal.EpochRecord` frames in the **WAL's own
  frame format** (``<u32 length><u32 crc32><pickled payload>``), one per
  committed epoch past the snapshot -- the identical bytes-on-the-wire
  discipline recovery already trusts, CRC-checked per frame.

:class:`SnapshotReplica` is the reader side: it rebuilds a local
``DatabaseState`` via ``from_snapshot``, registers the catalog's
concepts into a local optimizer, regenerates extents, and then serves
queries against its **pinned local generation** while a local
maintenance queue keeps extents incremental across applied epochs.
Staleness is explicit: every applied epoch carries the primary's
sequence and generation stamps, :attr:`SnapshotReplica.lag` is the
number of primary epochs not yet applied, and the **catch-up protocol**
(:meth:`SnapshotReplica.ensure_fresh`) polls delta batches until the
configured bound holds -- a replica that falls behind the server's
retained tail is handed a fresh snapshot instead of an unservable gap.

Consistency model: a replica always serves the extents of *some* fully
applied primary epoch -- the same prefix-consistency contract the async
tier's oracle enforces, property-checked across processes by
``tests/database/test_replica.py`` (every replica-served answer equals a
from-scratch refresh of the pinned generation, and the pinned generation
is never staler than the bound after catch-up).

The wire protocol (handshake lines + framed legs, error responses,
rebase rules) is normatively specified in ``docs/PROTOCOL.md``.
"""

from __future__ import annotations

import pickle
import socket
import socketserver
import threading
import zlib
from typing import Dict, List, Optional, Tuple

from .faults import (
    CircuitBreaker,
    DegradedServing,
    FaultPolicy,
    StalenessError,
    network_fault_policy,
)
from .store import DatabaseState
from .wal import _HEADER, _MAX_FRAME_BYTES, EpochRecord, catalog_identity

__all__ = [
    "ReplicaConnectionError",
    "ReplicaProtocolError",
    "ReplicaServer",
    "SnapshotReplica",
    "StalenessError",
]

#: Bumped on any incompatible wire change; exchanged in the handshake.
PROTOCOL_VERSION = "repro-replica/1"


class ReplicaProtocolError(RuntimeError):
    """A malformed or version-incompatible replica-stream exchange."""


class ReplicaConnectionError(ReplicaProtocolError, ConnectionError):
    """A transport-level replica-stream fault (drop, truncation, torn CRC).

    Distinct from a plain :class:`ReplicaProtocolError` (a server that
    *answered* with an error): the exchange died mid-flight, so the right
    response is to tear the connection down and re-ask -- every request
    in the protocol is idempotent.  Subclasses :class:`ConnectionError`
    so the shared network fault policy
    (:func:`~repro.database.faults.is_retryable_net_error`) retries it.
    """


def _encode_frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _read_exact(rfile, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = rfile.read(remaining)
        if not chunk:
            raise ReplicaConnectionError("stream closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(rfile):
    """One CRC-checked frame off the stream (the WAL's frame format)."""
    header = _read_exact(rfile, _HEADER.size)
    length, crc = _HEADER.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise ReplicaConnectionError(f"oversized frame ({length} bytes)")
    payload = _read_exact(rfile, length)
    if zlib.crc32(payload) != crc:
        raise ReplicaConnectionError("frame CRC mismatch")
    return pickle.loads(payload)


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class _ReplicaState:
    """The base snapshot + epoch tail one server retains (lock-guarded)."""

    def __init__(self, state: DatabaseState, catalog, tail_limit: int) -> None:
        self.state = state
        self.catalog = catalog
        self.tail_limit = tail_limit
        self.lock = threading.Lock()
        self.tail: List[EpochRecord] = []
        self.epoch_deltas: List = []
        self.epoch_schema_changed = False
        self.snapshots_served = 0
        self.deltas_served = 0
        self.rebases = 0
        self._rebase_locked()

    def _rebase_locked(self) -> None:
        self.base_snapshot = self.state.snapshot()
        self.base_sequence = self.state.commit_sequence
        self.base_generation = self.state.generation
        self.base_schema = self.state.schema
        self.base_catalog = catalog_identity(self.catalog)
        self.tail = []
        self.rebases += 1

    # -- mutation-log listener (runs on the primary's mutator thread) ------

    def on_delta(self, delta) -> None:
        """Buffer one typed delta of the epoch currently being committed."""
        self.epoch_deltas.append(delta)

    def on_schema_changed(self) -> None:
        """Mark the in-flight epoch as carrying a schema swap."""
        self.epoch_schema_changed = True

    def on_commit(self) -> None:
        """Seal the in-flight epoch into the tail, rebasing on swap/overflow."""
        deltas = tuple(self.epoch_deltas)
        schema_changed = self.epoch_schema_changed
        self.epoch_deltas = []
        self.epoch_schema_changed = False
        if not deltas and not schema_changed:
            return
        record = EpochRecord(
            sequence=self.state.commit_sequence,
            generation=self.state.generation,
            deltas=deltas,
            schema_changed=schema_changed,
        )
        with self.lock:
            # A schema swap invalidates every shipped delta interpretation:
            # rebase so late joiners (and resyncing replicas) start from a
            # snapshot taken under the new schema.
            if schema_changed or len(self.tail) >= self.tail_limit:
                self._rebase_locked()
            else:
                self.tail.append(record)

    # -- responses (handler threads) ----------------------------------------

    def response_for(self, have_sequence: int):
        """``("SNAPSHOT", payload, records)`` or ``("DELTA", None, records)``."""
        with self.lock:
            if have_sequence < self.base_sequence:
                self.snapshots_served += 1
                payload = {
                    "sequence": self.base_sequence,
                    "generation": self.base_generation,
                    "snapshot": self.base_snapshot,
                    "schema": self.base_schema,
                    "catalog": self.base_catalog,
                }
                return "SNAPSHOT", payload, list(self.tail)
            records = [record for record in self.tail if record.sequence > have_sequence]
            self.deltas_served += len(records)
            return "DELTA", None, records

    def position(self) -> Tuple[int, int]:
        """The newest shippable ``(sequence, generation)`` -- tail head or base."""
        with self.lock:
            if self.tail:
                newest = self.tail[-1]
                return newest.sequence, newest.generation
            return self.base_sequence, self.base_generation


class _ReplicaHandler(socketserver.StreamRequestHandler):
    """One replica connection: HELLO/POLL/STAT lines, framed responses."""

    # Poll round trips are latency-bound; don't let Nagle + delayed ACK
    # stall the catch-up protocol.
    disable_nagle_algorithm = True

    #: Hard cap on one request line; longer lines are a client error.
    MAX_LINE_BYTES = 4096

    def setup(self) -> None:  # noqa: D102 - socketserver plumbing
        # Idle timeout: a hung client must not pin this handler thread
        # (and its retained response buffers) forever.
        self.timeout = self.server.idle_timeout  # type: ignore[attr-defined]
        super().setup()

    def handle(self) -> None:  # noqa: D102 - protocol plumbing
        shared: _ReplicaState = self.server.replica_state  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(self.MAX_LINE_BYTES)
            except (TimeoutError, socket.timeout, ConnectionError):
                return
            if not line:
                return
            if len(line) >= self.MAX_LINE_BYTES and not line.endswith(b"\n"):
                self._line("ERROR line too long")
                return
            parts = line.decode("utf-8", "replace").strip().split()
            if not parts:
                continue
            command = parts[0].upper()
            try:
                if command == "HELLO" and len(parts) == 3:
                    if parts[1] != PROTOCOL_VERSION:
                        self._line(f"ERROR unsupported version {parts[1]}")
                        return
                    self._respond(shared, int(parts[2]))
                elif command == "POLL" and len(parts) == 2:
                    self._respond(shared, int(parts[1]))
                elif command == "STAT" and len(parts) == 1:
                    sequence, generation = shared.position()
                    self._line(f"PRIMARY {sequence} {generation}")
                elif command == "QUIT":
                    return
                else:
                    self._line("ERROR unknown command or bad arity")
            except ValueError:
                self._line("ERROR malformed arguments")
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                return

    def _respond(self, shared: _ReplicaState, have_sequence: int) -> None:
        kind, payload, records = shared.response_for(have_sequence)
        if kind == "SNAPSHOT":
            self._line(
                f"SNAPSHOT {payload['sequence']} {payload['generation']} {len(records)}"
            )
            self.wfile.write(_encode_frame(pickle.dumps(payload, protocol=4)))
        else:
            sequence, _ = shared.position()
            self._line(f"DELTA {sequence} {len(records)}")
        for record in records:
            self.wfile.write(_encode_frame(pickle.dumps(record, protocol=4)))
        self.wfile.flush()

    def _line(self, text: str) -> None:
        self.wfile.write(text.encode("utf-8") + b"\r\n")
        self.wfile.flush()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args, **kwargs):
        self._active_lock = threading.Lock()
        self._active: set = set()
        super().__init__(*args, **kwargs)

    def process_request(self, request, client_address):
        with self._active_lock:
            self._active.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request):
        with self._active_lock:
            self._active.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        """Abruptly drop every established connection (a dead server has
        no live sockets -- closing only the listener would leave clients
        connected to a ghost)."""
        with self._active_lock:
            doomed = list(self._active)
            self._active.clear()
        for request in doomed:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                request.close()
            except OSError:
                pass


class ReplicaServer:
    """Ships generation-stamped snapshots + delta tails to reader processes.

    Attach to a live primary *after* its catalog is registered (the
    shipped identity is captured at rebase time); mutations committed
    while the server runs land in the retained tail.  ``tail_limit``
    bounds the tail: past it the server rebases onto a fresh snapshot
    (late joiners pay one snapshot instead of an unbounded replay), and a
    replica whose position predates the current base is re-seeded with a
    snapshot by the catch-up protocol.  ``port=0`` binds an ephemeral
    port; hand :attr:`address` to :class:`SnapshotReplica`.
    """

    def __init__(
        self,
        state: DatabaseState,
        catalog,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tail_limit: int = 512,
        idle_timeout: Optional[float] = 60.0,
    ) -> None:
        self.state = state
        self.shared = _ReplicaState(state, catalog, tail_limit)
        self._server = _ThreadingTCPServer((host, port), _ReplicaHandler)
        self._server.replica_state = self.shared  # type: ignore[attr-defined]
        self._server.idle_timeout = idle_timeout  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        state.subscribe(self.shared)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` for replicas to dial."""
        return self._server.server_address[:2]

    @property
    def position(self) -> Tuple[int, int]:
        """The newest shippable ``(sequence, generation)``."""
        return self.shared.position()

    def start(self) -> "ReplicaServer":
        """Serve forever on a daemon thread; returns ``self`` for chaining."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="replica-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Detach from the primary and stop serving (idempotent).

        Established replica connections are dropped too: from a client's
        point of view a closed server is indistinguishable from a dead
        one, and the self-healing path owns the reconnect.
        """
        self.state.unsubscribe(self.shared)
        self._server.shutdown()
        self._server.server_close()
        self._server.close_all_connections()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ReplicaServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reader side
# ---------------------------------------------------------------------------


class SnapshotReplica:
    """A reader process's pinned-generation serving copy of the primary.

    :meth:`connect` performs the snapshot leg -- rebuild the state via
    ``DatabaseState.from_snapshot``, register the shipped catalog
    identity into a local :class:`~repro.optimizer.optimizer.SemanticQueryOptimizer`,
    regenerate extents -- and every :meth:`poll` applies the next delta
    batch as local epochs (one ``state.batch()`` per
    :class:`~repro.database.wal.EpochRecord`, flushed incrementally by a
    local :class:`~repro.database.maintenance.MaintenanceQueue`).
    Serving happens strictly against the last fully applied epoch:
    :attr:`applied_generation` is the primary generation every answer is
    pinned to.

    ``staleness_bound`` is the replica's freshness contract, measured in
    primary epochs: :meth:`ensure_fresh` polls until
    ``primary_sequence - applied_sequence <= staleness_bound`` (the
    catch-up protocol; a position behind the server's tail base comes
    back as a fresh snapshot and a full rebuild).  :meth:`answer_concept`
    runs the view-filtered evaluation and optionally cross-checks it
    against the unfiltered one (``check=True``), the paper's soundness
    invariant per served generation.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        staleness_bound: int = 8,
        timeout: float = 10.0,
        remote=None,
        policy: Optional[FaultPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.address = (address[0], int(address[1]))
        self.staleness_bound = staleness_bound
        self.timeout = timeout
        self.remote = remote
        self.policy = policy if policy is not None else network_fault_policy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.state: Optional[DatabaseState] = None
        self.optimizer = None
        self.maintenance = None
        self.applied_sequence = 0
        self.applied_generation = 0
        self.snapshot_loads = 0
        self.epochs_applied = 0
        self.polls = 0
        self.reconnects = 0
        self._degraded: Optional[DegradedServing] = None
        self._last_known_lag: Optional[int] = None
        self._matcher = None
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._lock = threading.Lock()

    # -- connection ---------------------------------------------------------

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        if not self.breaker.allow():
            raise ReplicaConnectionError(
                "circuit breaker open: primary unreachable, probe pending"
            )
        self._sock = socket.create_connection(self.address, timeout=self.timeout)
        self._sock.settimeout(self.timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self.reconnects += 1

    def _teardown_locked(self) -> None:
        for handle in (self._rfile, self._wfile, self._sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:  # pragma: no cover - best-effort close
                    pass
        self._sock = self._rfile = self._wfile = None

    def _exchange_locked(self, perform):
        """Run one request/response exchange with reconnect-on-drop retries.

        ``perform`` is re-invoked from scratch on each attempt (it must
        recompute its request from current replica state -- every request
        in the protocol is idempotent, and epoch application skips
        already-applied sequences).  Transport faults tear the connection
        down and retry under the jittered-backoff policy; exhaustion
        records a breaker failure and re-raises.  Success clears any
        degraded status.
        """
        attempt = 0
        while True:
            try:
                self._ensure_connected()
                result = perform()
            except OSError as error:
                self._teardown_locked()
                attempt += 1
                if not self.policy.should_retry(attempt, error):
                    self.breaker.record_failure()
                    raise
                self.policy.pause(attempt)
                continue
            self.breaker.record_success()
            self._degraded = None
            return result

    def _note_degraded(self, error: BaseException) -> None:
        """Record that serving continues pinned, behind an unreachable primary."""
        self._degraded = DegradedServing(
            reason=f"{type(error).__name__}: {error}",
            since_sequence=self.applied_sequence,
            since_generation=self.applied_generation,
            last_known_lag=self._last_known_lag,
            bound=self.staleness_bound,
        )

    @property
    def status(self):
        """``None`` while healthy; a typed ``DegradedServing`` otherwise."""
        return self._degraded

    @property
    def degraded(self) -> bool:
        """``True`` while serving pinned answers behind a connection fault."""
        return self._degraded is not None

    def _line(self, text: str) -> None:
        self._wfile.write(text.encode("utf-8") + b"\r\n")
        self._wfile.flush()

    def _read_header(self) -> List[str]:
        line = self._rfile.readline(4096)
        if not line:
            raise ReplicaConnectionError("server closed the connection")
        parts = line.decode("utf-8").strip().split()
        if not parts:
            raise ReplicaProtocolError("empty response header")
        if parts[0] == "ERROR":
            raise ReplicaProtocolError(" ".join(parts[1:]) or "server error")
        return parts

    def connect(self) -> "SnapshotReplica":
        """Dial the server and perform the initial snapshot handshake."""

        def perform():
            # -1 means "I have nothing": it forces the snapshot leg even
            # when the primary itself is still at commit sequence 0.
            have = self.applied_sequence if self.state is not None else -1
            self._line(f"HELLO {PROTOCOL_VERSION} {have}")
            return self._consume_response()

        with self._lock:
            self._exchange_locked(perform)
        return self

    def probe(self) -> bool:
        """Health probe: one ``STAT`` round trip; ``True`` when answered."""
        try:
            self.primary_position()
        except (OSError, ReplicaProtocolError):
            return False
        return True

    def close(self) -> None:
        """Drop the connection (local serving state stays usable)."""
        with self._lock:
            self._teardown_locked()

    # -- the snapshot + delta legs ------------------------------------------

    def _consume_response(self) -> int:
        """Apply one SNAPSHOT or DELTA response; returns epochs applied."""
        header = self._read_header()
        if header[0] == "SNAPSHOT" and len(header) == 4:
            payload = _read_frame(self._rfile)
            self._load_snapshot(payload)
            applied = sum(
                self._apply_epoch(_read_frame(self._rfile))
                for _ in range(int(header[3]))
            )
            return applied
        if header[0] == "DELTA" and len(header) == 3:
            return sum(
                self._apply_epoch(_read_frame(self._rfile))
                for _ in range(int(header[2]))
            )
        raise ReplicaProtocolError(f"unexpected response {header!r}")

    def _load_snapshot(self, payload: Dict) -> None:
        from ..optimizer.optimizer import SemanticQueryOptimizer
        from .maintenance import MaintenanceQueue

        if self.maintenance is not None:
            self.maintenance.close()
        self.state = DatabaseState.from_snapshot(
            payload["snapshot"], schema=payload["schema"]
        )
        self.optimizer = SemanticQueryOptimizer(payload["schema"])
        for name, concept in payload["catalog"]:
            self.optimizer.register_view_concept(name, concept)
        self.optimizer.catalog.regenerate_extents(self.state)
        self.maintenance = MaintenanceQueue(self.state, self.optimizer.catalog)
        self.applied_sequence = payload["sequence"]
        self.applied_generation = payload["generation"]
        self.snapshot_loads += 1
        # One pooled matcher per rebuilt catalog, not one per served query:
        # the remote client's connection pool is shared across the serving
        # threads, and match results never touch shared matcher state.
        if self.remote is not None:
            from ..optimizer.parallel import ShardedMatcher

            self._matcher = ShardedMatcher(
                self.optimizer.checker,
                self.optimizer.catalog,
                shards=1,
                backend="serial",
                remote=self.remote,
            )
        else:
            self._matcher = None

    def _apply_epoch(self, record: EpochRecord) -> int:
        if record.sequence <= self.applied_sequence:
            return 0
        with self.state.batch():
            for delta in record.deltas:
                self.state.apply_delta(delta)
        self.applied_sequence = record.sequence
        self.applied_generation = record.generation
        self.epochs_applied += 1
        return 1

    # -- catch-up protocol ---------------------------------------------------

    def primary_position(self) -> Tuple[int, int]:
        """The primary's newest ``(sequence, generation)`` (one round trip)."""

        def perform():
            self._line("STAT")
            return self._read_header()

        with self._lock:
            header = self._exchange_locked(perform)
        if header[0] != "PRIMARY" or len(header) != 3:
            raise ReplicaProtocolError(f"unexpected response {header!r}")
        return int(header[1]), int(header[2])

    @property
    def lag(self) -> int:
        """Primary epochs committed but not yet applied here (one round trip)."""
        lag = max(0, self.primary_position()[0] - self.applied_sequence)
        self._last_known_lag = lag
        return lag

    def poll(self) -> int:
        """Fetch and apply the next delta batch; returns epochs applied.

        A position that fell behind the server's retained tail comes back
        as a full ``SNAPSHOT`` response -- the replica rebuilds and the
        poll still converges.  A dropped or truncated exchange reconnects
        and re-asks under the fault policy (application is idempotent:
        already-applied sequences are skipped); a primary that stays
        unreachable past the budget flips the replica into degraded
        serving (see :meth:`ensure_fresh`) and the poll reports zero
        epochs instead of raising -- unless the replica has no state at
        all yet, in which case there is nothing to serve and the fault
        propagates.
        """

        def perform():
            self._line(f"POLL {self.applied_sequence}")
            self.polls += 1
            return self._consume_response()

        with self._lock:
            try:
                return self._exchange_locked(perform)
            except OSError as error:
                if self.state is None:
                    raise
                self._note_degraded(error)
                return 0

    def ensure_fresh(self, max_lag: Optional[int] = None, *, attempts: int = 64) -> int:
        """Catch up until ``lag <= max_lag`` (default: the staleness bound).

        Returns the final verified lag and clears the degraded status.
        Raises a typed :class:`~repro.database.faults.StalenessError` if
        the bound cannot be met within ``attempts`` polls against a
        *reachable* primary (a primary outrunning the replica's apply
        rate is an operational error, not silent staleness).

        Graceful degradation: when the primary is unreachable (and this
        replica has served before), the replica keeps serving its pinned
        generation instead of raising -- the typed
        :class:`~repro.database.faults.DegradedServing` status lands on
        :attr:`status`, and the returned value is the last lag the
        replica could verify (its freshness claim *as of* losing the
        primary).  The next successful exchange heals the status.
        """
        bound = self.staleness_bound if max_lag is None else max_lag
        for _ in range(attempts):
            try:
                lag = self.lag
            except (OSError, ReplicaProtocolError) as error:
                if self.state is None or not isinstance(error, OSError):
                    raise
                self._note_degraded(error)
                return self._last_known_lag or 0
            if lag <= bound:
                return lag
            self.poll()
            if self._degraded is not None:
                return self._last_known_lag or 0
        lag = self.lag
        if lag > bound:
            raise StalenessError(
                f"replica cannot catch up: lag {lag} > bound {bound} "
                f"after {attempts} polls",
                lag=lag,
                bound=bound,
            )
        return lag

    # -- serving -------------------------------------------------------------

    def answer_concept(self, concept, *, check: bool = False):
        """Answers for one ``QL`` concept against the pinned generation.

        Matches subsuming views over the local catalog (through the shared
        remote decision cache when one is attached), evaluates over the
        view-filtered candidate set, and -- with ``check=True`` --
        verifies the result against the unfiltered evaluation of the same
        pinned state (the serving-soundness invariant).  Returns
        ``(answers, generation)``.
        """
        matches = self._match(concept)
        evaluator = self.optimizer.evaluator
        if matches:
            answers = evaluator.concept_answers(
                concept, self.state, candidates=matches[0].extent
            )
        else:
            answers = evaluator.concept_answers(concept, self.state)
        if check:
            full = evaluator.concept_answers(concept, self.state)
            if answers != full:
                raise AssertionError(
                    f"unsound replica answer at generation {self.applied_generation}"
                )
        return answers, self.applied_generation

    def _match(self, concept):
        if self._matcher is not None:
            return self._matcher.match_batch([concept])[0]
        return self.optimizer.subsuming_views_for_concept(concept)
