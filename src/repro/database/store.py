"""An in-memory OODB state: objects, class memberships, attribute values.

The paper assumes "every state of the database gives rise to exactly one
model of [the schema] formulas" (Section 2.1); a :class:`DatabaseState` is a
finite such structure:

* a set of *objects* (identified by strings),
* explicit class membership assertions (closed upwards along the ``isA``
  hierarchy when exported as an interpretation, i.e. classification and
  generalization),
* attribute value assignments (aggregation).

A state can be checked against the structural schema
(:meth:`DatabaseState.integrity_violations`) -- typing, necessary and single
constraints -- and converted into a
:class:`repro.semantics.interpretation.Interpretation` so that concepts,
query classes and constraint formulas can be evaluated over it.

This module is the "simulated ConceptBase" substrate of the reproduction
(see DESIGN.md): the paper's optimizer only needs a store that can
materialize view extensions and evaluate queries, which this provides.

Since PR 4 the store is **versioned and delta-logged**:

* a monotonically increasing :attr:`DatabaseState.generation` counter bumps
  on every *effective* mutation (idempotent re-assertions are no-ops);
* every mutation emits typed deltas (:class:`ObjectAdded`,
  :class:`ObjectRemoved`, :class:`MembershipAsserted`,
  :class:`MembershipRetracted`, :class:`AttributeSet`,
  :class:`AttributeRemoved`) to subscribed listeners -- the mutation log
  that drives the incremental view-maintenance engine
  (:mod:`repro.database.maintenance`);
* reverse indexes (object -> classes, object -> attribute pairs,
  ``(subject, attribute)`` -> values) make :meth:`remove_object` and
  :meth:`attribute_values` proportional to the object's own data instead of
  the whole store;
* upward-closed extents are memoized per class with targeted,
  generation-correct invalidation (a membership change invalidates exactly
  the class and its superclasses), and :meth:`to_interpretation` is a
  cached, incrementally patched export: unchanged per-class / per-attribute
  frozensets are reused, and the :class:`Interpretation` is rebuilt through
  the trusted fast path only when the generation moved.

``with state.batch():`` opens a mutation epoch: deltas still reach the
listeners immediately, but the commit notification (which the maintenance
queue uses to flush) fires once, at the end of the outermost batch.

Since PR 7 the store is also the **commit scheduler's serialization
point**: a reentrant write lock serializes concurrent writer threads for
the whole batch (mutations + commit notifications, so WAL appends are
naturally ordered), the epoch sequence is assigned *here*
(:attr:`DatabaseState.commit_sequence` bumps once per effective commit,
before listeners run) rather than in the maintainer, and an attached
:class:`~repro.database.commit.CommitScheduler` gates new write batches --
in read-only degraded mode writers get a typed
:class:`~repro.database.commit.DurabilityError` *before* mutating anything
while readers keep serving.  Reads never take the write lock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..concepts.schema import Schema
from ..semantics.interpretation import Interpretation
from ..dl.ast import DLSchema

__all__ = [
    "IntegrityViolation",
    "DatabaseState",
    "StateSnapshot",
    "Delta",
    "ObjectAdded",
    "ObjectRemoved",
    "MembershipAsserted",
    "MembershipRetracted",
    "AttributeSet",
    "AttributeRemoved",
]


@dataclass(frozen=True)
class IntegrityViolation:
    """One violation of the structural schema by a database state."""

    kind: str
    object_id: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} on {self.object_id}: {self.detail}"


# ---------------------------------------------------------------------------
# Typed deltas (the mutation log records)
# ---------------------------------------------------------------------------


#: Bound on cached constants-extended interpretation exports per generation
#: (each retains an O(domain) constant map; see :meth:`to_interpretation`).
_MAX_EXTENDED_EXPORTS = 64


@dataclass(frozen=True)
class Delta:
    """Base class of the typed mutation-log records."""


@dataclass(frozen=True)
class ObjectAdded(Delta):
    """A new object identifier entered the store."""

    object_id: str


@dataclass(frozen=True)
class ObjectRemoved(Delta):
    """An object left the store (its memberships/pairs are retracted first)."""

    object_id: str


@dataclass(frozen=True)
class MembershipAsserted(Delta):
    """An explicit class membership was asserted."""

    object_id: str
    class_name: str


@dataclass(frozen=True)
class MembershipRetracted(Delta):
    """An explicit class membership was retracted."""

    object_id: str
    class_name: str


@dataclass(frozen=True)
class AttributeSet(Delta):
    """An attribute value pair ``(subject attribute value)`` was asserted."""

    subject: str
    attribute: str
    value: str


@dataclass(frozen=True)
class AttributeRemoved(Delta):
    """An attribute value pair was retracted."""

    subject: str
    attribute: str
    value: str


class StateSnapshot:
    """An immutable, generation-pinned read view of a :class:`DatabaseState`.

    Pins the state *as of one generation*: the object set, the ``SL``
    schema, and the cached interpretation export, all of which are frozen
    structures shared with the live state (taking a snapshot is O(classes +
    attributes), not O(data)).  The snapshot exposes exactly the read
    surface query evaluation and the maintenance flush walk consume
    (:meth:`to_interpretation`, :attr:`objects`, :meth:`extent`,
    :meth:`attribute_pairs`, :meth:`object_pairs`), so views can be
    re-materialized against a *past* generation while the live state keeps
    mutating -- the serve-from-generation substrate of the async
    maintenance tier (:class:`repro.database.maintenance.AsyncMaintainer`).

    Snapshots are **picklable** (custom ``__getstate__``/``__setstate__``
    over the slots, dropping the lazily built pairs index): the durable
    tier's checkpoint files (:mod:`repro.database.wal`) are pickled
    snapshots.  To make a checkpoint lossless the snapshot also pins the
    *explicit* membership assertions (:attr:`explicit`) -- the upward-closed
    extents alone cannot reconstruct a live state, since retracting an
    explicit membership later must not disturb closures contributed by
    other explicit assertions.  :meth:`DatabaseState.from_snapshot` rebuilds
    a live state from that explicit surface.
    """

    __slots__ = (
        "generation",
        "schema",
        "objects",
        "explicit",
        "_interpretation",
        "_concepts",
        "_attributes",
        "_pairs_index",
    )

    def __init__(self, state: "DatabaseState") -> None:
        self.generation = state.generation
        self.schema = state.schema
        self.objects = state.objects
        self.explicit = {
            class_name: frozenset(members)
            for class_name, members in state._memberships.items()
            if members
        }
        self._interpretation = state.to_interpretation()
        if state._objects:
            # The per-name frozensets backing the export; _export_base
            # builds fresh dicts per generation and never mutates old ones,
            # so holding references pins them.  (to_interpretation() above
            # refreshed them to this generation.)
            self._concepts = dict(state._interp_concepts)
            self._attributes = dict(state._interp_attributes)
        else:
            # The empty-state export bypasses _export_base, whose dicts may
            # still describe the last non-empty generation.
            self._concepts = {}
            self._attributes = {}
        self._pairs_index: Optional[Dict[str, Tuple[Tuple[str, str, str], ...]]] = None

    def __getstate__(self):
        # Slots class: pickle every slot except the lazily built pairs
        # index (cheap to rebuild, and keeping it out makes checkpoint
        # payloads independent of whether a flush walked the snapshot).
        return {
            "generation": self.generation,
            "schema": self.schema,
            "objects": self.objects,
            "explicit": self.explicit,
            "_interpretation": self._interpretation,
            "_concepts": self._concepts,
            "_attributes": self._attributes,
        }

    def __setstate__(self, payload) -> None:
        for slot, value in payload.items():
            object.__setattr__(self, slot, value)
        object.__setattr__(self, "_pairs_index", None)

    def to_interpretation(self, constants: Optional[Iterable[str]] = None) -> Interpretation:
        """The pinned state as a finite interpretation (see ``DatabaseState``)."""
        extra = frozenset(constants or ()) - self.objects
        if not extra:
            return self._interpretation
        if not self.objects:
            constant_map = {name: name for name in extra}
            return Interpretation(extra, {}, {}, constant_map)
        domain = self._interpretation.domain | extra
        constant_map = {obj: obj for obj in domain}
        return Interpretation.trusted(
            frozenset(domain), self._concepts, self._attributes, constant_map
        )

    def __len__(self) -> int:
        return len(self.objects)

    def extent(self, class_name: str) -> FrozenSet[str]:
        """The upward-closed class extent at the pinned generation."""
        return self._concepts.get(class_name, frozenset())

    def attribute_pairs(self, attribute: str) -> FrozenSet[Tuple[str, str]]:
        """All value assignments of one attribute at the pinned generation."""
        return self._attributes.get(attribute, frozenset())

    def classes(self) -> FrozenSet[str]:
        """Class names with a pinned extension (explicit members or schema)."""
        return frozenset(self._concepts)

    def attributes(self) -> FrozenSet[str]:
        """Attribute names with a pinned extension."""
        return frozenset(self._attributes)

    def object_pairs(self, object_id: str) -> Tuple[Tuple[str, str, str], ...]:
        """The ``(attribute, subject, value)`` triples touching one object.

        Backed by an index built lazily from the pinned attribute
        extensions (one O(total pairs) pass on first use, amortized over a
        whole flush batch); the build runs on the maintenance worker
        thread, never on the committing mutator.
        """
        if self._pairs_index is None:
            index: Dict[str, List[Tuple[str, str, str]]] = {}
            for attribute, pairs in self._attributes.items():
                for subject, value in pairs:
                    triple = (attribute, subject, value)
                    index.setdefault(subject, []).append(triple)
                    if value != subject:
                        index.setdefault(value, []).append(triple)
            self._pairs_index = {key: tuple(triples) for key, triples in index.items()}
        return self._pairs_index.get(object_id, ())


class DatabaseState:
    """A mutable, in-memory object base.

    Parameters
    ----------
    schema:
        The ``SL`` schema governing the state (used for the upward closure of
        memberships along ``isA`` and for integrity checking).  May be
        ``None`` for schema-less scratch states.
    """

    def __init__(self, schema: Optional[Schema] = None) -> None:
        self._schema = schema if schema is not None else Schema.empty()
        self._objects: Set[str] = set()
        self._memberships: Dict[str, Set[str]] = {}
        self._attributes: Dict[str, Set[Tuple[str, str]]] = {}

        # Reverse indexes: object -> explicit classes, object -> the
        # (attribute, subject, value) triples it participates in (either
        # end), and (subject, attribute) -> values.
        self._classes_of: Dict[str, Set[str]] = {}
        self._pairs_of: Dict[str, Set[Tuple[str, str, str]]] = {}
        self._values_of: Dict[Tuple[str, str], Set[str]] = {}

        # Versioning, mutation log and memo invalidation state.
        self.generation = 0
        self._listeners: List[object] = []
        self._batch_depth = 0
        self._commit_pending = False

        # Commit scheduling: writer threads serialize on the write lock
        # for the whole batch; the store assigns the epoch sequence at
        # commit; an attached CommitScheduler gates writes while degraded.
        self._write_lock = threading.RLock()
        self._commit_sequence = 0
        self._commit_gate = None

        # class -> membership classes contributing to its upward-closed
        # extent (filled lazily as membership classes first appear).
        self._contributors: Dict[str, Set[str]] = {}
        self._schema_concepts: Optional[FrozenSet[str]] = None
        self._schema_attributes: Optional[FrozenSet[str]] = None
        self._supers_memo: Dict[str, FrozenSet[str]] = {}
        self._extent_memo: Dict[str, FrozenSet[str]] = {}
        self._frozen_attrs: Dict[str, FrozenSet[Tuple[str, str]]] = {}
        self._frozen_objects: Optional[FrozenSet[str]] = None

        # Cached interpretation export (generation-keyed).
        self._interp_generation = -1
        self._interp_base: Optional[Interpretation] = None
        self._interp_concepts: Dict[str, FrozenSet[str]] = {}
        self._interp_attributes: Dict[str, FrozenSet[Tuple[str, str]]] = {}
        self._interp_extended: Dict[FrozenSet[str], Interpretation] = {}

    # -- schema ----------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The ``SL`` schema governing the state."""
        return self._schema

    @schema.setter
    def schema(self, schema: Optional[Schema]) -> None:
        """Swap the schema inside a batch, dropping schema-derived memos."""
        with self.batch():
            self._schema = schema if schema is not None else Schema.empty()
            # A different hierarchy changes every upward closure: rebuild
            # the contributor map and drop all schema-derived memos.
            self._supers_memo.clear()
            self._extent_memo.clear()
            self._schema_concepts = None
            self._schema_attributes = None
            self._contributors = {}
            for class_name in self._memberships:
                for superclass in self._superclasses(class_name):
                    self._contributors.setdefault(superclass, set()).add(class_name)
            self._touch_generation()
            # A schema swap changes extents without any object-level delta;
            # listeners that memoize the hierarchy (the maintenance queue)
            # must invalidate and re-materialize, so it commits like any
            # other mutation after an explicit schema-change notification.
            self._commit_pending = True
            for listener in list(self._listeners):
                hook = getattr(listener, "on_schema_changed", None)
                if hook is not None:
                    hook()

    def _superclasses(self, class_name: str) -> FrozenSet[str]:
        cached = self._supers_memo.get(class_name)
        if cached is None:
            cached = self._schema.all_superclasses(class_name)
            self._supers_memo[class_name] = cached
        return cached

    # -- mutation log ----------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Attach a mutation-log listener.

        Listeners receive ``on_delta(delta)`` for every emitted
        :class:`Delta` and ``on_commit()`` once per outermost mutation (or
        once per :meth:`batch` epoch).
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Detach a previously subscribed listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    @property
    def in_batch(self) -> bool:
        """``True`` while inside a ``with state.batch():`` epoch."""
        return self._batch_depth > 0

    @property
    def commit_sequence(self) -> int:
        """The store-assigned epoch sequence of the last effective commit.

        Bumps exactly once per committed epoch that emitted at least one
        delta (or swapped the schema), *before* the ``on_commit``
        listeners run -- so a durable maintainer reads the number of the
        epoch it is persisting, and concurrent writers (serialized by the
        write lock) can never race it.
        """
        return self._commit_sequence

    def reset_commit_sequence(self, sequence: int) -> None:
        """Re-anchor the epoch numbering (crash recovery continues a log)."""
        self._commit_sequence = sequence

    def attach_commit_scheduler(self, scheduler) -> None:
        """Gate write batches through a :class:`~repro.database.commit.CommitScheduler`.

        While the scheduler is degraded, entering a new outermost batch
        raises its typed ``DurabilityError`` before any mutation happens.
        One gate at a time: attaching a different scheduler replaces the
        previous one.
        """
        self._commit_gate = scheduler

    def detach_commit_scheduler(self, scheduler=None) -> None:
        """Remove the commit gate (no-op when ``scheduler`` is not attached)."""
        if scheduler is None or self._commit_gate is scheduler:
            self._commit_gate = None

    @property
    def commit_scheduler(self):
        """The attached commit scheduler, if any."""
        return self._commit_gate

    @property
    def read_only(self) -> bool:
        """``True`` while the attached scheduler is in degraded mode."""
        gate = self._commit_gate
        return bool(gate is not None and gate.read_only)

    @property
    def last_commit_ticket(self):
        """The calling thread's most recent commit ticket (if durable-tiered)."""
        gate = self._commit_gate
        return None if gate is None else gate.last_ticket

    @contextmanager
    def batch(self):
        """Open a mutation epoch: listeners see one commit at the end.

        Batches nest; only the outermost exit fires the commit notification.
        Every public mutator runs inside an implicit batch, so a lone
        ``state.set_attribute(...)`` commits immediately while
        ``with state.batch(): ...`` coalesces an arbitrary interleaving of
        mutations into one maintenance flush.

        Concurrent writer threads serialize here: the (reentrant) write
        lock is held for the whole batch, including the commit
        notifications, so epochs -- and the WAL appends the durable tier
        issues from ``on_commit`` -- are totally ordered.  When a commit
        scheduler is attached and degraded, the outermost entry raises its
        ``DurabilityError`` before any mutation happens (read-only mode);
        readers never touch this lock.
        """
        self._write_lock.acquire()
        try:
            if self._batch_depth == 0 and self._commit_gate is not None:
                self._commit_gate.check_writable()
        except BaseException:
            self._write_lock.release()
            raise
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            try:
                if self._batch_depth == 0 and self._commit_pending:
                    self._commit_pending = False
                    self._commit_sequence += 1
                    for listener in list(self._listeners):
                        on_commit = getattr(listener, "on_commit", None)
                        if on_commit is not None:
                            on_commit()
            finally:
                self._write_lock.release()

    def _emit(self, delta: Delta) -> None:
        self._commit_pending = True
        for listener in list(self._listeners):
            listener.on_delta(delta)

    def _touch_generation(self) -> None:
        self.generation += 1

    # -- population -----------------------------------------------------------

    def add_object(self, object_id: str, *classes: str) -> str:
        """Create an object (idempotent) and optionally assert memberships."""
        with self.batch():
            self._add_object(object_id)
            for class_name in classes:
                self.assert_membership(object_id, class_name)
        return object_id

    def _add_object(self, object_id: str) -> None:
        if object_id in self._objects:
            return
        self._objects.add(object_id)
        self._frozen_objects = None
        self._touch_generation()
        self._emit(ObjectAdded(object_id))

    def assert_membership(self, object_id: str, class_name: str) -> None:
        """Assert that the object is an instance of the class."""
        with self.batch():
            self._add_object(object_id)
            members = self._memberships.get(class_name)
            if members is None:
                members = self._memberships[class_name] = set()
                for superclass in self._superclasses(class_name):
                    self._contributors.setdefault(superclass, set()).add(class_name)
            if object_id in members:
                return
            members.add(object_id)
            self._classes_of.setdefault(object_id, set()).add(class_name)
            self._invalidate_extents(class_name)
            self._touch_generation()
            self._emit(MembershipAsserted(object_id, class_name))

    def retract_membership(self, object_id: str, class_name: str) -> None:
        """Remove an explicit membership assertion (no cascade)."""
        with self.batch():
            members = self._memberships.get(class_name)
            if members is None or object_id not in members:
                return
            members.discard(object_id)
            self._classes_of.get(object_id, set()).discard(class_name)
            self._invalidate_extents(class_name)
            self._touch_generation()
            self._emit(MembershipRetracted(object_id, class_name))

    def set_attribute(self, subject: str, attribute: str, value: str) -> None:
        """Assert an attribute value ``(subject attribute value)``."""
        with self.batch():
            self._add_object(subject)
            self._add_object(value)
            pairs = self._attributes.setdefault(attribute, set())
            if (subject, value) in pairs:
                return
            pairs.add((subject, value))
            triple = (attribute, subject, value)
            self._pairs_of.setdefault(subject, set()).add(triple)
            self._pairs_of.setdefault(value, set()).add(triple)
            self._values_of.setdefault((subject, attribute), set()).add(value)
            self._frozen_attrs.pop(attribute, None)
            self._touch_generation()
            self._emit(AttributeSet(subject, attribute, value))

    def remove_attribute(self, subject: str, attribute: str, value: str) -> None:
        """Retract an attribute value assertion."""
        with self.batch():
            pairs = self._attributes.get(attribute)
            if pairs is None or (subject, value) not in pairs:
                return
            pairs.discard((subject, value))
            triple = (attribute, subject, value)
            self._pairs_of.get(subject, set()).discard(triple)
            self._pairs_of.get(value, set()).discard(triple)
            values = self._values_of.get((subject, attribute))
            if values is not None:
                values.discard(value)
                # Empty index entries must not outlive their data: a churn
                # of create/link/delete cycles would otherwise grow the
                # reverse indexes with one dead key per pair ever seen.
                if not values:
                    del self._values_of[(subject, attribute)]
            self._frozen_attrs.pop(attribute, None)
            self._touch_generation()
            self._emit(AttributeRemoved(subject, attribute, value))

    def remove_object(self, object_id: str) -> None:
        """Delete an object together with its memberships and attribute values.

        Thanks to the reverse indexes the cost is proportional to the
        object's own memberships and pairs, not to the total store size; the
        constituent retractions are emitted individually (so maintenance can
        recheck affected neighbours) before the final :class:`ObjectRemoved`.
        """
        with self.batch():
            if object_id not in self._objects:
                return
            for class_name in sorted(self._classes_of.get(object_id, ())):
                self.retract_membership(object_id, class_name)
            for attribute, subject, value in sorted(self._pairs_of.get(object_id, ())):
                self.remove_attribute(subject, attribute, value)
            self._classes_of.pop(object_id, None)
            self._pairs_of.pop(object_id, None)
            self._objects.discard(object_id)
            self._frozen_objects = None
            self._touch_generation()
            self._emit(ObjectRemoved(object_id))

    # -- memo invalidation ------------------------------------------------------

    def _invalidate_extents(self, class_name: str) -> None:
        """Drop the memoized upward-closed extents a membership change touches."""
        for superclass in self._superclasses(class_name):
            self._extent_memo.pop(superclass, None)

    # -- inspection ------------------------------------------------------------

    @property
    def objects(self) -> FrozenSet[str]:
        """All object identifiers of the state."""
        if self._frozen_objects is None:
            self._frozen_objects = frozenset(self._objects)
        return self._frozen_objects

    def __len__(self) -> int:
        return len(self._objects)

    def explicit_extent(self, class_name: str) -> FrozenSet[str]:
        """The objects explicitly asserted to be members of the class."""
        return frozenset(self._memberships.get(class_name, ()))

    def extent(self, class_name: str) -> FrozenSet[str]:
        """The class extent closed upwards along ``isA``.

        An object explicitly asserted to belong to ``Patient`` is also a
        member of every (transitive) superclass such as ``Person``.  Extents
        are memoized; a membership change invalidates exactly the asserted
        class and its superclasses.
        """
        cached = self._extent_memo.get(class_name)
        if cached is None:
            members: Set[str] = set(self._memberships.get(class_name, ()))
            for contributor in self._contributors.get(class_name, ()):
                if contributor != class_name:
                    members.update(self._memberships.get(contributor, ()))
            cached = frozenset(members)
            self._extent_memo[class_name] = cached
        return cached

    def attribute_pairs(self, attribute: str) -> FrozenSet[Tuple[str, str]]:
        """All value assignments of one attribute."""
        cached = self._frozen_attrs.get(attribute)
        if cached is None:
            cached = frozenset(self._attributes.get(attribute, ()))
            self._frozen_attrs[attribute] = cached
        return cached

    def attribute_values(self, subject: str, attribute: str) -> FrozenSet[str]:
        """The values of ``attribute`` for one object (indexed, O(result))."""
        return frozenset(self._values_of.get((subject, attribute), ()))

    def object_classes(self, object_id: str) -> FrozenSet[str]:
        """The classes explicitly asserted for one object."""
        return frozenset(self._classes_of.get(object_id, ()))

    def object_pairs(self, object_id: str) -> FrozenSet[Tuple[str, str, str]]:
        """The ``(attribute, subject, value)`` triples touching one object.

        Both the subject and the value position count as "touching"; the
        maintenance engine walks these edges to find objects whose view
        membership a delta may have changed.
        """
        return frozenset(self._pairs_of.get(object_id, ()))

    def classes(self) -> FrozenSet[str]:
        """Class names with at least one explicit member, plus schema classes."""
        if self._schema_concepts is None:
            self._schema_concepts = self._schema.concept_names()
        return frozenset(self._memberships) | self._schema_concepts

    def attributes(self) -> FrozenSet[str]:
        """Attribute names with at least one assignment, plus schema attributes."""
        if self._schema_attributes is None:
            self._schema_attributes = self._schema.attribute_names()
        return frozenset(self._attributes) | self._schema_attributes

    # -- integrity --------------------------------------------------------------

    def integrity_violations(self) -> List[IntegrityViolation]:
        """Check the state against the structural schema.

        The checks mirror the three kinds of restrictions of Section 2.1:
        attribute typing (value must belong to the declared range when the
        subject belongs to the declaring class), necessary attributes (at
        least one value) and single-valued attributes (at most one value),
        plus the global attribute domain/range declarations.
        """
        violations: List[IntegrityViolation] = []
        extents = {name: self.extent(name) for name in self.classes()}

        for axiom_class in self._schema.concept_names():
            members = extents.get(axiom_class, frozenset())
            for attribute, range_class in self._schema.value_restrictions(axiom_class):
                range_extent = extents.get(range_class, frozenset())
                for subject in members:
                    for value in self.attribute_values(subject, attribute):
                        if value not in range_extent:
                            violations.append(
                                IntegrityViolation(
                                    "typing",
                                    subject,
                                    f"value {value!r} of {attribute!r} is not in {range_class!r}",
                                )
                            )
            for attribute in self._schema.necessary_attributes(axiom_class):
                for subject in members:
                    if not self.attribute_values(subject, attribute):
                        violations.append(
                            IntegrityViolation(
                                "necessary",
                                subject,
                                f"member of {axiom_class!r} has no value for {attribute!r}",
                            )
                        )
            for attribute in self._schema.functional_attributes(axiom_class):
                for subject in members:
                    values = self.attribute_values(subject, attribute)
                    if len(values) > 1:
                        violations.append(
                            IntegrityViolation(
                                "single",
                                subject,
                                f"member of {axiom_class!r} has {len(values)} values "
                                f"for functional attribute {attribute!r}",
                            )
                        )

        for typing in self._schema.attribute_typings:
            domain_extent = extents.get(typing.domain, frozenset())
            range_extent = extents.get(typing.range, frozenset())
            for subject, value in self.attribute_pairs(typing.attribute):
                if subject not in domain_extent:
                    violations.append(
                        IntegrityViolation(
                            "domain",
                            subject,
                            f"subject of {typing.attribute!r} is not in {typing.domain!r}",
                        )
                    )
                if value not in range_extent:
                    violations.append(
                        IntegrityViolation(
                            "range",
                            value,
                            f"value of {typing.attribute!r} is not in {typing.range!r}",
                        )
                    )
        return violations

    def is_consistent(self) -> bool:
        """``True`` iff the state satisfies all structural schema constraints."""
        return not self.integrity_violations()

    # -- export -----------------------------------------------------------------

    def snapshot(self) -> StateSnapshot:
        """Pin the current generation as an immutable :class:`StateSnapshot`.

        The snapshot shares the frozen per-name extensions with the cached
        interpretation export, so taking one costs a dict copy, not a data
        copy.  Later mutations of this state never change a snapshot:
        readers (and the async maintenance worker) evaluate against the
        pinned generation while the live state moves on.
        """
        return StateSnapshot(self)

    @classmethod
    def from_snapshot(
        cls, snapshot: StateSnapshot, schema: Optional[Schema] = None
    ) -> "DatabaseState":
        """Rebuild a live state from a snapshot's explicit surface.

        Replays the pinned objects, *explicit* membership assertions and
        attribute pairs into a fresh state (one batch, no listeners yet --
        recovery attaches maintainers afterwards).  The rebuilt state is
        extensionally identical to the snapshotted one: every extent and
        attribute extension matches, and future retractions behave as they
        would have on the original (which closed extents alone could not
        guarantee).  The :attr:`generation` counter restarts from the
        replay -- generations are process-local serving coordinates, not
        durable identities -- and ``schema`` (default: the snapshot's)
        lets recovery rebuild under a schema that evolved past the
        checkpoint.
        """
        state = cls(schema if schema is not None else snapshot.schema)
        with state.batch():
            for object_id in sorted(snapshot.objects):
                state._add_object(object_id)
            for class_name in sorted(snapshot.explicit):
                for object_id in sorted(snapshot.explicit[class_name]):
                    state.assert_membership(object_id, class_name)
            for attribute in sorted(snapshot.attributes()):
                for subject, value in sorted(snapshot.attribute_pairs(attribute)):
                    state.set_attribute(subject, attribute, value)
        return state

    def apply_delta(self, delta: Delta) -> None:
        """Apply one logged :class:`Delta` to this state (replay-idempotent).

        The WAL recovery path (:mod:`repro.database.wal`) replays epoch
        tails through this: deltas are records of *effective* mutations, so
        replaying them through the public mutators reproduces the explicit
        data exactly, and re-applying an already-present delta is a no-op
        (every mutator is idempotent).
        """
        if isinstance(delta, ObjectAdded):
            self.add_object(delta.object_id)
        elif isinstance(delta, MembershipAsserted):
            self.assert_membership(delta.object_id, delta.class_name)
        elif isinstance(delta, MembershipRetracted):
            self.retract_membership(delta.object_id, delta.class_name)
        elif isinstance(delta, AttributeSet):
            self.set_attribute(delta.subject, delta.attribute, delta.value)
        elif isinstance(delta, AttributeRemoved):
            self.remove_attribute(delta.subject, delta.attribute, delta.value)
        elif isinstance(delta, ObjectRemoved):
            # The constituent retractions were logged (and replayed) before
            # this record; removing the bare object is what remains.
            self.remove_object(delta.object_id)
        else:  # pragma: no cover - future delta kinds must opt in explicitly
            raise TypeError(f"unknown delta type: {type(delta).__name__}")

    def to_interpretation(self, constants: Optional[Iterable[str]] = None) -> Interpretation:
        """The state as a finite interpretation (classes upward-closed along ``isA``).

        Every object identifier also serves as a constant denoting itself, so
        singleton concepts ``{o}`` in queries refer to stored objects;
        ``constants`` may add further constant names that should denote
        themselves (they are added to the domain if missing).

        The export is cached on :attr:`generation`: while the state does not
        change, repeated calls return the *same* :class:`Interpretation`
        object, and after a change only the per-class / per-attribute pieces
        whose memos were invalidated are recomputed (the rest of the frozen
        extensions are shared with the previous export).
        """
        if not self._objects:
            # The tiny empty-state export keeps the original (validating)
            # construction: a placeholder element when nothing denotes.
            domain: Set[str] = set(constants or ())
            constant_map = {name: name for name in domain}
            if not domain:
                domain = {"__empty__"}
            return Interpretation(domain, {}, {}, constant_map)
        extra = frozenset(constants or ()) - self.objects
        base = self._export_base()
        if not extra:
            return base
        cached = self._interp_extended.get(extra)
        if cached is None:
            domain = base.domain | extra
            constant_map = {obj: obj for obj in domain}
            cached = Interpretation.trusted(
                frozenset(domain), self._interp_concepts, self._interp_attributes, constant_map
            )
            # Each entry retains an O(domain) constant map; a read-heavy
            # phase with many distinct constraint-constant sets must not
            # accumulate them without bound.
            if len(self._interp_extended) >= _MAX_EXTENDED_EXPORTS:
                self._interp_extended.clear()
            self._interp_extended[extra] = cached
        return cached

    def _export_base(self) -> Interpretation:
        if self._interp_base is not None and self._interp_generation == self.generation:
            return self._interp_base
        domain = self.objects
        # Incremental patch: extent()/attribute_pairs() are memoized, so
        # only the entries a mutation invalidated are recomputed; the dicts
        # themselves are rebuilt (cheap -- one lookup per name) so
        # previously exported interpretations stay frozen.
        self._interp_concepts = {name: self.extent(name) for name in self.classes()}
        self._interp_attributes = {name: self.attribute_pairs(name) for name in self.attributes()}
        constant_map = {obj: obj for obj in domain}
        self._interp_base = Interpretation.trusted(
            domain, self._interp_concepts, self._interp_attributes, constant_map
        )
        self._interp_generation = self.generation
        self._interp_extended.clear()
        return self._interp_base

    # -- synonym handling ----------------------------------------------------------

    def apply_inverse_synonyms(self, dl_schema: DLSchema) -> None:
        """Materialize inverse-synonym attribute values (e.g. ``specialist``).

        For every attribute declaration with an ``inverse`` synonym, the
        synonym's pairs are kept in sync with the primitive attribute in both
        directions, so that query evaluation over the concrete state can use
        either name.  The sync goes through :meth:`set_attribute`, so every
        materialized pair lands in the mutation log and the maintenance
        engine sees it.
        """
        with self.batch():
            for decl in dl_schema.attributes.values():
                if decl.inverse is None:
                    continue
                primitive_pairs = set(self._attributes.get(decl.name, ()))
                synonym_pairs = set(self._attributes.get(decl.inverse, ()))
                for first, second in synonym_pairs:
                    if (second, first) not in primitive_pairs:
                        self.set_attribute(second, decl.name, first)
                        primitive_pairs.add((second, first))
                for first, second in primitive_pairs:
                    if (second, first) not in synonym_pairs:
                        self.set_attribute(second, decl.inverse, first)
