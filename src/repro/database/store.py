"""An in-memory OODB state: objects, class memberships, attribute values.

The paper assumes "every state of the database gives rise to exactly one
model of [the schema] formulas" (Section 2.1); a :class:`DatabaseState` is a
finite such structure:

* a set of *objects* (identified by strings),
* explicit class membership assertions (closed upwards along the ``isA``
  hierarchy when exported as an interpretation, i.e. classification and
  generalization),
* attribute value assignments (aggregation).

A state can be checked against the structural schema
(:meth:`DatabaseState.integrity_violations`) -- typing, necessary and single
constraints -- and converted into a
:class:`repro.semantics.interpretation.Interpretation` so that concepts,
query classes and constraint formulas can be evaluated over it.

This module is the "simulated ConceptBase" substrate of the reproduction
(see DESIGN.md): the paper's optimizer only needs a store that can
materialize view extensions and evaluate queries, which this provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..concepts.schema import Schema
from ..semantics.interpretation import Interpretation
from ..dl.ast import DLSchema

__all__ = ["IntegrityViolation", "DatabaseState"]


@dataclass(frozen=True)
class IntegrityViolation:
    """One violation of the structural schema by a database state."""

    kind: str
    object_id: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} on {self.object_id}: {self.detail}"


class DatabaseState:
    """A mutable, in-memory object base.

    Parameters
    ----------
    schema:
        The ``SL`` schema governing the state (used for the upward closure of
        memberships along ``isA`` and for integrity checking).  May be
        ``None`` for schema-less scratch states.
    """

    def __init__(self, schema: Optional[Schema] = None) -> None:
        self.schema = schema if schema is not None else Schema.empty()
        self._objects: Set[str] = set()
        self._memberships: Dict[str, Set[str]] = {}
        self._attributes: Dict[str, Set[Tuple[str, str]]] = {}

    # -- population -----------------------------------------------------------

    def add_object(self, object_id: str, *classes: str) -> str:
        """Create an object (idempotent) and optionally assert memberships."""
        self._objects.add(object_id)
        for class_name in classes:
            self.assert_membership(object_id, class_name)
        return object_id

    def assert_membership(self, object_id: str, class_name: str) -> None:
        """Assert that the object is an instance of the class."""
        self._objects.add(object_id)
        self._memberships.setdefault(class_name, set()).add(object_id)

    def retract_membership(self, object_id: str, class_name: str) -> None:
        """Remove an explicit membership assertion (no cascade)."""
        self._memberships.get(class_name, set()).discard(object_id)

    def set_attribute(self, subject: str, attribute: str, value: str) -> None:
        """Assert an attribute value ``(subject attribute value)``."""
        self._objects.add(subject)
        self._objects.add(value)
        self._attributes.setdefault(attribute, set()).add((subject, value))

    def remove_attribute(self, subject: str, attribute: str, value: str) -> None:
        """Retract an attribute value assertion."""
        self._attributes.get(attribute, set()).discard((subject, value))

    def remove_object(self, object_id: str) -> None:
        """Delete an object together with its memberships and attribute values."""
        self._objects.discard(object_id)
        for members in self._memberships.values():
            members.discard(object_id)
        for name, pairs in self._attributes.items():
            self._attributes[name] = {
                pair for pair in pairs if object_id not in pair
            }

    # -- inspection ------------------------------------------------------------

    @property
    def objects(self) -> FrozenSet[str]:
        """All object identifiers of the state."""
        return frozenset(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def explicit_extent(self, class_name: str) -> FrozenSet[str]:
        """The objects explicitly asserted to be members of the class."""
        return frozenset(self._memberships.get(class_name, ()))

    def extent(self, class_name: str) -> FrozenSet[str]:
        """The class extent closed upwards along ``isA``.

        An object explicitly asserted to belong to ``Patient`` is also a
        member of every (transitive) superclass such as ``Person``.
        """
        members: Set[str] = set(self._memberships.get(class_name, ()))
        for other, extent in self._memberships.items():
            if other == class_name:
                continue
            if class_name in self.schema.all_superclasses(other):
                members.update(extent)
        return frozenset(members)

    def attribute_pairs(self, attribute: str) -> FrozenSet[Tuple[str, str]]:
        """All value assignments of one attribute."""
        return frozenset(self._attributes.get(attribute, ()))

    def attribute_values(self, subject: str, attribute: str) -> FrozenSet[str]:
        """The values of ``attribute`` for one object."""
        return frozenset(
            value for subj, value in self._attributes.get(attribute, ()) if subj == subject
        )

    def classes(self) -> FrozenSet[str]:
        """Class names with at least one explicit member, plus schema classes."""
        return frozenset(self._memberships) | self.schema.concept_names()

    def attributes(self) -> FrozenSet[str]:
        """Attribute names with at least one assignment, plus schema attributes."""
        return frozenset(self._attributes) | self.schema.attribute_names()

    # -- integrity --------------------------------------------------------------

    def integrity_violations(self) -> List[IntegrityViolation]:
        """Check the state against the structural schema.

        The checks mirror the three kinds of restrictions of Section 2.1:
        attribute typing (value must belong to the declared range when the
        subject belongs to the declaring class), necessary attributes (at
        least one value) and single-valued attributes (at most one value),
        plus the global attribute domain/range declarations.
        """
        violations: List[IntegrityViolation] = []
        extents = {name: self.extent(name) for name in self.classes()}

        for axiom_class in self.schema.concept_names():
            members = extents.get(axiom_class, frozenset())
            for attribute, range_class in self.schema.value_restrictions(axiom_class):
                range_extent = extents.get(range_class, frozenset())
                for subject in members:
                    for value in self.attribute_values(subject, attribute):
                        if value not in range_extent:
                            violations.append(
                                IntegrityViolation(
                                    "typing",
                                    subject,
                                    f"value {value!r} of {attribute!r} is not in {range_class!r}",
                                )
                            )
            for attribute in self.schema.necessary_attributes(axiom_class):
                for subject in members:
                    if not self.attribute_values(subject, attribute):
                        violations.append(
                            IntegrityViolation(
                                "necessary",
                                subject,
                                f"member of {axiom_class!r} has no value for {attribute!r}",
                            )
                        )
            for attribute in self.schema.functional_attributes(axiom_class):
                for subject in members:
                    values = self.attribute_values(subject, attribute)
                    if len(values) > 1:
                        violations.append(
                            IntegrityViolation(
                                "single",
                                subject,
                                f"member of {axiom_class!r} has {len(values)} values "
                                f"for functional attribute {attribute!r}",
                            )
                        )

        for typing in self.schema.attribute_typings:
            domain_extent = extents.get(typing.domain, frozenset())
            range_extent = extents.get(typing.range, frozenset())
            for subject, value in self.attribute_pairs(typing.attribute):
                if subject not in domain_extent:
                    violations.append(
                        IntegrityViolation(
                            "domain",
                            subject,
                            f"subject of {typing.attribute!r} is not in {typing.domain!r}",
                        )
                    )
                if value not in range_extent:
                    violations.append(
                        IntegrityViolation(
                            "range",
                            value,
                            f"value of {typing.attribute!r} is not in {typing.range!r}",
                        )
                    )
        return violations

    def is_consistent(self) -> bool:
        """``True`` iff the state satisfies all structural schema constraints."""
        return not self.integrity_violations()

    # -- export -----------------------------------------------------------------

    def to_interpretation(self, constants: Optional[Iterable[str]] = None) -> Interpretation:
        """The state as a finite interpretation (classes upward-closed along ``isA``).

        Every object identifier also serves as a constant denoting itself, so
        singleton concepts ``{o}`` in queries refer to stored objects;
        ``constants`` may add further constant names that should denote
        themselves (they are added to the domain if missing).
        """
        domain: Set[str] = set(self._objects)
        constant_map: Dict[str, str] = {obj: obj for obj in self._objects}
        for name in constants or ():
            domain.add(name)
            constant_map[name] = name
        if not domain:
            domain = {"__empty__"}
        concepts = {name: self.extent(name) & frozenset(domain) for name in self.classes()}
        attributes = {name: self.attribute_pairs(name) for name in self.attributes()}
        return Interpretation(domain, concepts, attributes, constant_map)

    # -- synonym handling ----------------------------------------------------------

    def apply_inverse_synonyms(self, dl_schema: DLSchema) -> None:
        """Materialize inverse-synonym attribute values (e.g. ``specialist``).

        For every attribute declaration with an ``inverse`` synonym, the
        synonym's pairs are kept in sync with the primitive attribute in both
        directions, so that query evaluation over the concrete state can use
        either name.
        """
        for decl in dl_schema.attributes.values():
            if decl.inverse is None:
                continue
            primitive_pairs = set(self._attributes.get(decl.name, set()))
            synonym_pairs = set(self._attributes.get(decl.inverse, set()))
            primitive_pairs.update((second, first) for first, second in synonym_pairs)
            self._attributes[decl.name] = primitive_pairs
            self._attributes[decl.inverse] = {
                (second, first) for first, second in primitive_pairs
            }
