"""A durable, append-only, segmented write-ahead log for maintenance epochs.

PR 5's :class:`~repro.database.maintenance.AsyncMaintainer` made view
maintenance crash-safe *in memory*: typed-delta epochs survive a worker
``kill()`` and replay converges to the sync tier -- but everything dies with
the process.  This module is the storage engine underneath the durable tier
(:class:`~repro.database.maintenance.DurableMaintainer`): every committed
epoch is appended to an on-disk log *before* it is enqueued for flushing,
so a fresh process can rebuild the state and every view extent from disk.

File format
-----------

A log is a directory:

* ``epochs-<8 digits>.seg`` -- segment files holding a sequence of
  **frames**.  A frame is ``<u32 length><u32 crc32(payload)><payload>``
  (little-endian header), where the payload is a pickled
  :class:`EpochRecord`.  Segments roll over at :attr:`segment_bytes`;
  record sequences increase strictly across the whole directory.
* ``checkpoint-<12 digits>.ckpt`` -- one frame whose payload is a pickled
  :class:`CheckpointPayload`: the epoch sequence it covers, a full
  :class:`~repro.database.store.StateSnapshot` (which pins the explicit
  membership surface, see ``store.py``) and the catalog identity (view
  names + normalized concepts) the snapshot was serving.  Checkpoints are
  written via temp file + ``fsync`` + atomic rename + directory ``fsync``,
  so a visible checkpoint is always complete; the digits are the covered
  sequence, so the newest checkpoint sorts last.

Durability discipline
---------------------

``sync_every=N`` batches ``fsync`` over N appended epochs (``1`` =
fsync-per-commit; ``0``/``None`` disables the automatic batching entirely
-- the log then fsyncs **only** on an explicit :meth:`WriteAheadLog.sync`,
e.g. from a checkpoint or from the commit scheduler's group-commit flush).
Acknowledged fsyncs are the durability boundary: :attr:`durable_sequence`
is the last epoch guaranteed to survive a crash, anything after it may be
torn.  Parties that need to react to the watermark (the group-commit
ticket machinery in :mod:`repro.database.commit`) register a callback via
:meth:`WriteAheadLog.add_sync_listener`; every successful ``sync`` invokes
the listeners with the new watermark.  Checkpoint writes first sync the
log, and compaction only deletes segments whose every record is covered by
the just-made-durable checkpoint -- so no crash ordering can lose an
acknowledged epoch.

Locking & fencing invariants
----------------------------

The log object itself is **not** internally synchronized: callers
serialize access.  In-process that caller is the commit scheduler
(:mod:`repro.database.commit`), whose ``_wal_lock`` append fence wraps
every mutating call.  The one deliberate exception is the out-of-lock
group fsync: :meth:`WriteAheadLog.sync_window` is called *under* the
fence to pin what an fsync may claim, the ``fs.fsync`` itself runs with
the fence **released** (writers keep appending behind it), and
:meth:`WriteAheadLog.complete_sync` is called back under the fence to
adopt exactly the captured watermark -- never the live tail, so the
durability boundary stays conservative no matter how the fsync races
later appends.

The unsynced-batch counter is conservative by construction: an append is
counted *before* its bytes reach the filesystem and the counter resets
only after a **fully successful** ``sync`` -- so neither a torn append nor
a failed fsync can under-count the batch a retry must cover (at worst the
counter over-counts and an extra fsync is paid, which is always safe).

Recovery (:meth:`WriteAheadLog.recover`) loads the newest checkpoint whose
frame validates (corrupt ones are reported and skipped), then replays
segment frames in order, **stopping at the first bad frame** -- short
header, short payload, CRC mismatch, unpicklable payload or a sequence
regression -- and reports exactly what was dropped (bytes, parseable
records, corrupt checkpoints).  Recovery never raises on torn input; a
writer re-opening the directory truncates the torn tail
(:meth:`WriteAheadLog.reset_to`) before appending again.

All OS access goes through a tiny filesystem seam (:class:`OsFileSystem`),
so the fault-injection harness (``tests/database/fault_fs.py``) can tear
writes mid-frame, fail ``fsync`` and kill the writer at arbitrary byte
boundaries while the crash-recovery oracle checks every recovered state
against the from-scratch refresh of a durable prefix of commits.
"""

from __future__ import annotations

import errno
import os
import pickle
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .store import Delta, StateSnapshot

__all__ = [
    "CheckpointPayload",
    "EpochRecord",
    "OsFileSystem",
    "RETRYABLE_ERRNOS",
    "WalError",
    "WalRecovery",
    "WriteAheadLog",
    "catalog_identity",
    "is_retryable_io_error",
]

_HEADER = struct.Struct("<II")
#: Sanity bound on a frame's payload length: a corrupted header must not
#: make the reader allocate gigabytes before the CRC can reject it.
_MAX_FRAME_BYTES = 1 << 30

_SEGMENT_RE = re.compile(r"^epochs-(\d{8})\.seg$")
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})\.ckpt$")


class WalError(RuntimeError):
    """A write-ahead-log invariant violation (e.g. catalog identity mismatch).

    The root of the durability error taxonomy: recoverable I/O trouble on
    the commit path surfaces as the :class:`repro.database.commit.DurabilityError`
    subclass (typed, carrying the last acknowledged sequence), while
    structural violations -- catalog identity mismatches, failed checkpoint
    writes -- raise this base class directly.
    """


#: ``errno`` values worth retrying with backoff before declaring an I/O
#: fault persistent: media hiccups (``EIO``), space pressure that a
#: concurrent compaction may relieve (``ENOSPC``/``EDQUOT``), interrupted
#: or temporarily unserviceable calls (``EINTR``/``EAGAIN``/``EBUSY``).
RETRYABLE_ERRNOS = frozenset(
    {
        errno.EIO,
        errno.ENOSPC,
        errno.EDQUOT,
        errno.EINTR,
        errno.EAGAIN,
        errno.EBUSY,
        errno.ETIMEDOUT,
    }
)


def is_retryable_io_error(error: BaseException) -> bool:
    """``True`` iff ``error`` is an :class:`OSError` worth retrying.

    An ``OSError`` without an ``errno`` (injected faults, exotic wrappers)
    counts as retryable: the bounded retry policy turns a persistent fault
    into degradation anyway, so the unknown case errs towards one more
    probe rather than an immediate outage.
    """
    if not isinstance(error, OSError):
        return False
    return error.errno is None or error.errno in RETRYABLE_ERRNOS


@dataclass(frozen=True)
class EpochRecord:
    """One committed epoch as persisted in the log.

    ``deltas`` are the typed :class:`~repro.database.store.Delta` records of
    the epoch in emission order; ``generation`` is the committing state's
    generation after the epoch (diagnostic only -- generations are
    process-local); ``schema_changed`` mirrors the in-memory
    ``MaintenanceEpoch`` flag.
    """

    sequence: int
    generation: int
    deltas: Tuple[Delta, ...]
    schema_changed: bool = False


@dataclass(frozen=True)
class CheckpointPayload:
    """A durable cut: everything up to ``sequence`` baked into one snapshot."""

    sequence: int
    snapshot: StateSnapshot
    #: ``(view name, normalized concept)`` pairs -- the catalog identity the
    #: snapshot was serving.  Concepts pickle stamp-free (see
    #: ``concepts/intern.py``) and re-intern structurally in a fresh
    #: process, so identity is compared via re-interned ids on recovery.
    catalog: Tuple[Tuple[str, object], ...] = ()


def catalog_identity(catalog) -> Tuple[Tuple[str, object], ...]:
    """The ``(name, normalized concept)`` identity pairs of a view catalog."""
    from ..concepts.normalize import normalize_concept

    return tuple(
        (view.name, normalize_concept(view.concept)) for view in catalog
    )


@dataclass
class WalRecovery:
    """What :meth:`WriteAheadLog.recover` found on disk.

    ``epochs`` is the replay tail (records past the checkpoint, in
    sequence order); the ``dropped_*`` fields and ``corrupt_checkpoints``
    report everything recovery had to discard -- recovery never raises on
    torn input, it reports.
    """

    checkpoint: Optional[CheckpointPayload] = None
    epochs: Tuple[EpochRecord, ...] = ()
    dropped_bytes: int = 0
    dropped_records: int = 0
    corrupt_checkpoints: Tuple[str, ...] = ()
    segments_scanned: int = 0
    #: Per-segment valid-prefix byte lengths (consumed by ``reset_to``).
    good_lengths: Dict[str, int] = field(default_factory=dict)
    #: Segments wholly past the first bad frame (dropped, removed on reset).
    abandoned_segments: Tuple[str, ...] = ()

    @property
    def last_sequence(self) -> int:
        """The newest epoch sequence the recovered image reflects (0 = empty)."""
        if self.epochs:
            return self.epochs[-1].sequence
        if self.checkpoint is not None:
            return self.checkpoint.sequence
        return 0


class OsFileSystem:
    """The real-OS implementation of the WAL's filesystem seam.

    Append handles are cached per path (one ``open`` per segment lifetime,
    not per record); ``read`` flushes a cached handle first so in-process
    readers observe buffered frames.  The fault-injection harness
    implements the same surface over in-memory durable/volatile buffers.
    """

    def __init__(self) -> None:
        self._handles: Dict[str, object] = {}

    def makedirs(self, path: str) -> None:
        """Create ``path`` (and parents) if missing."""
        os.makedirs(path, exist_ok=True)

    def listdir(self, path: str) -> List[str]:
        """Directory entries, unordered, as the OS reports them."""
        return os.listdir(path)

    def exists(self, path: str) -> bool:
        """``True`` iff ``path`` exists."""
        return os.path.exists(path)

    def append(self, path: str, data: bytes) -> None:
        """Append bytes through the cached per-path append handle."""
        handle = self._handles.get(path)
        if handle is None:
            handle = open(path, "ab")
            self._handles[path] = handle
        handle.write(data)

    def write(self, path: str, data: bytes) -> None:
        """Replace the file's contents (dropping any cached append handle)."""
        self._drop_handle(path)
        with open(path, "wb") as handle:
            handle.write(data)

    def read(self, path: str) -> bytes:
        """Whole-file read; flushes a cached append handle first."""
        handle = self._handles.get(path)
        if handle is not None:
            handle.flush()
        with open(path, "rb") as reader:
            return reader.read()

    def fsync(self, path: str) -> None:
        """``fsync`` the file, through the cached handle when one is open."""
        handle = self._handles.get(path)
        if handle is not None:
            handle.flush()
            os.fsync(handle.fileno())
            return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, path: str) -> None:
        """``fsync`` a directory's namespace (create/rename durability)."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def truncate(self, path: str, length: int) -> None:
        """Truncate the file to ``length`` bytes (torn-tail repair)."""
        handle = self._handles.get(path)
        if handle is not None:
            handle.flush()
            handle.truncate(length)
            return
        with open(path, "rb+") as writer:
            writer.truncate(length)

    def replace(self, source: str, target: str) -> None:
        """Atomically rename ``source`` over ``target`` (checkpoint publish)."""
        self._drop_handle(source)
        self._drop_handle(target)
        os.replace(source, target)

    def remove(self, path: str) -> None:
        """Delete the file (segment/checkpoint compaction)."""
        self._drop_handle(path)
        os.remove(path)

    def close(self) -> None:
        """Close every cached append handle."""
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    def _drop_handle(self, path: str) -> None:
        handle = self._handles.pop(path, None)
        if handle is not None:
            handle.close()


def _encode_frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _parse_frames(data: bytes, min_sequence: int):
    """``(records, good_length)``: the valid frame prefix of one segment.

    Stops at the first bad frame: truncated header/payload, CRC mismatch,
    unpicklable payload, a non-:class:`EpochRecord` payload, or a sequence
    that fails to increase past ``min_sequence`` (corruption that still
    CRCs is astronomically unlikely, but a misdirected or re-ordered frame
    would surface exactly as a sequence regression).
    """
    records: List[EpochRecord] = []
    offset = 0
    previous = min_sequence
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_FRAME_BYTES or offset + _HEADER.size + length > total:
            break
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = pickle.loads(payload)
        except Exception:
            break
        if not isinstance(record, EpochRecord) or record.sequence <= previous:
            break
        records.append(record)
        previous = record.sequence
        offset += _HEADER.size + length
    return records, offset


class WriteAheadLog:
    """The append/checkpoint/compact/recover surface over one log directory.

    Parameters
    ----------
    path:
        The log directory (created if missing).
    sync_every:
        ``fsync`` the active segment after every N appended epochs.
        ``1`` = per-commit durability; ``N > 1`` = group-commit batching
        (N appends share one fsync); ``0``/``None`` = **no automatic
        fsync at all** -- durability then advances only on an explicit
        :meth:`sync` (issued by a checkpoint, a group-commit flush, or
        the caller).  ``0`` and ``None`` are equivalent and normalize to
        ``0``.
    segment_bytes:
        Roll to a fresh segment once the active one reaches this size.
    fs:
        The filesystem seam (default: the real OS).  The fault-injection
        harness passes its in-memory implementation here.
    """

    def __init__(
        self,
        path: str,
        *,
        sync_every: Optional[int] = 1,
        segment_bytes: int = 1 << 20,
        fs=None,
    ) -> None:
        self.path = path
        self.sync_every = sync_every or 0
        self.segment_bytes = segment_bytes
        self.fs = fs if fs is not None else OsFileSystem()
        self.fs.makedirs(path)
        self._active: Optional[str] = None
        self._active_size = 0
        self._segment_index = 1 + max(
            (int(match.group(1)) for match in map(_SEGMENT_RE.match, self.fs.listdir(path)) if match),
            default=0,
        )
        #: Last record sequence per retained segment (drives compaction).
        self._segment_last: Dict[str, int] = {}
        self._since_sync = 0
        self._appended_sequence = 0
        self._durable_sequence = 0
        # A freshly created segment's *directory entry* is volatile until
        # the directory itself is fsynced; sync() pays that once per roll.
        self._dir_sync_needed = False
        self._sync_listeners: List[Callable[[int], None]] = []
        self.sync_count = 0

    # -- write path --------------------------------------------------------

    @property
    def durable_sequence(self) -> int:
        """The newest sequence covered by an acknowledged ``fsync``."""
        return self._durable_sequence

    @property
    def appended_sequence(self) -> int:
        """The newest sequence handed to the filesystem (maybe still volatile)."""
        return self._appended_sequence

    @property
    def pending_sync(self) -> int:
        """Appends (including torn attempts) not yet covered by a successful sync."""
        return self._since_sync

    def add_sync_listener(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(durable_sequence)`` for every successful sync.

        The durable-watermark notification channel: the commit scheduler
        resolves fsync-ACK tickets from here, so batched ``sync_every``
        fsyncs triggered inside :meth:`append` acknowledge every covered
        commit without a second bookkeeping path.
        """
        self._sync_listeners.append(callback)

    def append(self, record: EpochRecord) -> None:
        """Append one epoch frame; fsyncs per the ``sync_every`` batching.

        The unsynced counter is bumped *before* the bytes are handed to the
        filesystem: a torn append (an ``OSError`` after a partial write)
        must still count towards the batch the next sync covers, otherwise
        a retry after a failed fsync would under-count what is volatile.
        The bookkeeping that names the record (sizes, sequences) only
        advances once the filesystem accepted the whole frame, so a caller
        can distinguish "frame landed, sync pending" (``appended_sequence``
        reached the record) from "frame torn" (it did not, and
        :meth:`discard_torn_tail` repairs the file before a re-append).
        """
        frame = _encode_frame(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        if self._active is None or self._active_size >= self.segment_bytes:
            self._roll_segment()
        target = os.path.join(self.path, self._active)
        self._since_sync += 1
        self.fs.append(target, frame)
        self._active_size += len(frame)
        self._segment_last[self._active] = record.sequence
        self._appended_sequence = record.sequence
        if self.sync_every and self._since_sync >= self.sync_every:
            self.sync()

    def discard_torn_tail(self) -> int:
        """Truncate unaccounted bytes a failed append left on the active segment.

        After ``fs.append`` raises mid-frame the file may hold a torn
        suffix the log's own size accounting never adopted; appending the
        retry after it would bury valid frames behind garbage (recovery
        stops at the first bad frame).  Returns the number of bytes
        discarded (0 when the tail was clean).
        """
        if self._active is None:
            return 0
        target = os.path.join(self.path, self._active)
        if not self.fs.exists(target):
            return 0
        excess = len(self.fs.read(target)) - self._active_size
        if excess > 0:
            self.fs.truncate(target, self._active_size)
            return excess
        return 0

    def _roll_segment(self) -> None:
        # Make the outgoing segment durable before frames land in the next
        # one: recovery stops at the first bad frame, so a volatile tail in
        # an *earlier* segment would silently shadow later durable frames.
        if self._active is not None and self._since_sync:
            self.sync()
        self._active = f"epochs-{self._segment_index:08d}.seg"
        self._segment_index += 1
        self._active_size = 0
        self._dir_sync_needed = True

    def sync(self) -> None:
        """Force an ``fsync`` of the active segment (advances durability).

        After a segment roll the new file's directory entry is itself
        volatile: fsyncing the file contents alone would not keep a crash
        from unlinking the whole segment.  The first sync of a fresh
        segment therefore also fsyncs the log directory.

        The unsynced counter and the durable watermark move only when
        every constituent fsync succeeded: a failure part-way (file synced
        but directory entry still volatile) leaves the batch counted as
        unsynced, so the retry re-covers all of it.  Successful syncs
        notify the registered watermark listeners.
        """
        if self._active is not None:
            self.fs.fsync(os.path.join(self.path, self._active))
            if self._dir_sync_needed:
                self.fs.fsync_dir(self.path)
                self._dir_sync_needed = False
        self._since_sync = 0
        self._durable_sequence = self._appended_sequence
        self.sync_count += 1
        for callback in self._sync_listeners:
            callback(self._durable_sequence)

    def sync_window(self) -> Optional[Dict[str, object]]:
        """Capture the target of an out-of-lock group fsync (or ``None``).

        The group-commit leader calls this *under* the scheduler's append
        fence, then performs the actual ``fs.fsync`` with the fence
        released -- so writer threads keep appending (and accumulating
        behind the in-flight fsync, which is the entire point of group
        commit) while the disk works.  The window pins everything the
        fsync may claim: the active segment path, the appended watermark
        at capture time and the unsynced batch it covers.  Bytes appended
        *after* capture are not claimed -- :meth:`complete_sync` adopts
        exactly the captured watermark, so the durability boundary stays
        conservative no matter how the fsync races later appends.
        """
        if self._active is None:
            return None
        return {
            "segment": self._active,
            "path": os.path.join(self.path, self._active),
            "target": self._appended_sequence,
            "batch": self._since_sync,
            "dir_sync": self._dir_sync_needed,
        }

    def complete_sync(self, window: Dict[str, object]) -> None:
        """Adopt a finished out-of-lock fsync (called back under the fence).

        Advances the durable watermark to the *captured* target (never
        past it), discounts exactly the captured batch from the unsynced
        counter (appends that landed during the fsync stay counted), and
        notifies the watermark listeners -- resolving every ticket the
        window covers.
        """
        self._since_sync = max(0, self._since_sync - int(window["batch"]))
        if window["dir_sync"] and self._active == window["segment"]:
            self._dir_sync_needed = False
        self._durable_sequence = max(self._durable_sequence, int(window["target"]))
        self.sync_count += 1
        for callback in self._sync_listeners:
            callback(self._durable_sequence)

    def write_checkpoint(self, payload: CheckpointPayload) -> str:
        """Durably publish a checkpoint, then compact what it subsumes.

        The log is synced first (the checkpoint must never claim coverage
        beyond the durable log); the checkpoint file is written to a temp
        name, fsynced, atomically renamed and the directory fsynced -- a
        visible checkpoint is therefore always complete.  Superseded
        checkpoints and fully covered segments are deleted last, so every
        crash ordering leaves either the old or the new recovery basis
        intact.
        """
        self.sync()
        name = f"checkpoint-{payload.sequence:012d}.ckpt"
        final = os.path.join(self.path, name)
        temp = final + ".tmp"
        frame = _encode_frame(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        try:
            self.fs.write(temp, frame)
            self.fs.fsync(temp)
        except Exception:
            if self.fs.exists(temp):
                try:
                    self.fs.remove(temp)
                except OSError:
                    pass
            raise
        self.fs.replace(temp, final)
        self.fs.fsync_dir(self.path)
        for other in self.fs.listdir(self.path):
            match = _CHECKPOINT_RE.match(other)
            if match and int(match.group(1)) < payload.sequence:
                self.fs.remove(os.path.join(self.path, other))
        self.compact(payload.sequence)
        return name

    def compact(self, covered_sequence: int) -> List[str]:
        """Delete non-active segments whose every record is checkpoint-covered."""
        removed = []
        for name, last in sorted(self._segment_last.items()):
            if name != self._active and last <= covered_sequence:
                self.fs.remove(os.path.join(self.path, name))
                del self._segment_last[name]
                removed.append(name)
        return removed

    def close(self) -> None:
        """Flush and release file handles (no implicit fsync)."""
        self.fs.close()

    # -- recovery ----------------------------------------------------------

    def recover(self) -> WalRecovery:
        """Read the newest valid checkpoint plus the replayable epoch tail.

        Never raises on torn/truncated/garbage input: scanning stops at the
        first bad frame and the report says what was dropped.  Checkpoint
        files that fail validation are skipped (the next-newest is tried),
        so a torn checkpoint write degrades to the previous recovery basis
        instead of losing the log.
        """
        names = self.fs.listdir(self.path)
        recovery = WalRecovery()
        corrupt: List[str] = []
        checkpoints = sorted(
            (name for name in names if _CHECKPOINT_RE.match(name)), reverse=True
        )
        for name in checkpoints:
            payload = self._load_checkpoint(os.path.join(self.path, name))
            if payload is not None:
                recovery.checkpoint = payload
                break
            corrupt.append(name)
        recovery.corrupt_checkpoints = tuple(corrupt)
        base = recovery.checkpoint.sequence if recovery.checkpoint else 0

        segments = sorted(name for name in names if _SEGMENT_RE.match(name))
        recovery.segments_scanned = len(segments)
        epochs: List[EpochRecord] = []
        abandoned: List[str] = []
        previous = 0
        broken = False
        for name in segments:
            data = self.fs.read(os.path.join(self.path, name))
            if broken:
                # Past the first bad frame nothing is trustworthy; count
                # this segment's parseable prefix so the report is honest.
                records, good = _parse_frames(data, previous)
                recovery.dropped_records += len(records)
                recovery.dropped_bytes += len(data)
                abandoned.append(name)
                continue
            records, good = _parse_frames(data, previous)
            epochs.extend(records)
            if records:
                previous = records[-1].sequence
            recovery.good_lengths[name] = good
            if good < len(data):
                recovery.dropped_bytes += len(data) - good
                broken = True
        recovery.abandoned_segments = tuple(abandoned)
        recovery.epochs = tuple(
            record for record in epochs if record.sequence > base
        )
        return recovery

    def _load_checkpoint(self, path: str) -> Optional[CheckpointPayload]:
        try:
            data = self.fs.read(path)
        except OSError:
            return None
        if len(data) < _HEADER.size:
            return None
        length, crc = _HEADER.unpack_from(data, 0)
        payload = data[_HEADER.size : _HEADER.size + length]
        if length > _MAX_FRAME_BYTES or len(payload) < length or zlib.crc32(payload) != crc:
            return None
        try:
            checkpoint = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(checkpoint, CheckpointPayload):
            return None
        return checkpoint

    def reset_to(self, recovery: WalRecovery) -> None:
        """Prepare the directory for appending after ``recovery``.

        Truncates the torn tail (rewriting the broken segment's valid
        prefix through the atomic temp+rename discipline), removes
        abandoned segments, and re-adopts the surviving tail segment as
        the active one so new frames continue the recovered sequence.
        Recovery itself never mutates the directory -- only a writer that
        intends to append pays this.
        """
        for name in recovery.abandoned_segments:
            self.fs.remove(os.path.join(self.path, name))
        self._segment_last = {}
        previous = 0
        for name in sorted(recovery.good_lengths):
            target = os.path.join(self.path, name)
            data = self.fs.read(target)
            good = recovery.good_lengths[name]
            if good == 0:
                self.fs.remove(target)
                continue
            if good < len(data):
                temp = target + ".tmp"
                self.fs.write(temp, data[:good])
                self.fs.fsync(temp)
                self.fs.replace(temp, target)
                self.fs.fsync_dir(self.path)
            records, _ = _parse_frames(data[:good], previous)
            if records:
                self._segment_last[name] = records[-1].sequence
                previous = records[-1].sequence
        retained = sorted(self._segment_last)
        if retained:
            self._active = retained[-1]
            self._active_size = recovery.good_lengths[self._active]
        else:
            self._active = None
            self._active_size = 0
        self._segment_index = 1 + max(
            (int(_SEGMENT_RE.match(name).group(1)) for name in retained),
            default=self._segment_index - 1,
        )
        self._since_sync = 0
        self._appended_sequence = recovery.last_sequence
        self._durable_sequence = recovery.last_sequence
