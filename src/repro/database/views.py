"""Materialized views over database states (Sections 1 and 2.2).

A *view* is a query class without a constraint clause (purely structural);
*materialization* means that membership of objects in the view, although
derivable by the view definition, is stored explicitly so that access to the
view is as fast as to any other class.  The optimizer then uses a subsuming
view's stored extension to restrict the search space of new queries.

:class:`MaterializedView` holds one view together with its stored extent and
refresh bookkeeping; :class:`ViewCatalog` is the registry the optimizer
scans.  Registration enforces the paper's soundness requirement: queries
with a non-structural part are rejected as views
(:class:`~repro.core.errors.NonStructuralViewError`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..concepts.normalize import normalize_concept
from ..concepts.syntax import Concept
from ..core.errors import NonStructuralViewError
from ..dl.abstraction import query_class_to_concept, schema_to_sl
from ..dl.ast import DLSchema, QueryClassDecl
from .lattice import LatticeMatchStats, ViewLattice
from .query_eval import QueryEvaluator
from .store import DatabaseState

__all__ = ["MaterializedView", "ViewCatalog"]


class MaterializedView:
    """One materialized view: definition, abstract concept, stored extent."""

    def __init__(
        self,
        name: str,
        definition: QueryClassDecl,
        concept: Concept,
    ) -> None:
        if not definition.is_structural:
            raise NonStructuralViewError(
                f"query class {definition.name!r} has a constraint clause and "
                "cannot be materialized as a view (its structural part would "
                "not capture it completely)"
            )
        self.name = name
        self.definition = definition
        self.concept = normalize_concept(concept)
        self._extent: FrozenSet[str] = frozenset()
        #: Generation of the state the stored extent was computed against
        #: (``None`` until first stamped).  The async maintenance tier
        #: stamps every install, so readers can tell *which* consistent
        #: database generation an extent answers for.
        self.extent_generation: Optional[int] = None
        self.refresh_count = 0
        self.access_count = 0

    # -- maintenance -----------------------------------------------------------

    def refresh(self, state: DatabaseState, evaluator: QueryEvaluator) -> FrozenSet[str]:
        """Recompute and store the view extension over the given state.

        Views are structural, so their answer set equals the extension of
        their ``QL`` concept restricted to the stored objects.
        """
        self._extent = evaluator.concept_answers(self.concept, state)
        self.extent_generation = getattr(state, "generation", None)
        self.refresh_count += 1
        return self._extent

    def on_object_added(
        self, object_id: str, state: DatabaseState, evaluator: QueryEvaluator
    ) -> None:
        """Incremental maintenance: re-evaluate only the changed object."""
        matches = evaluator.concept_answers(self.concept, state, candidates=[object_id])
        if matches:
            self._extent = self._extent | matches
        else:
            self._extent = self._extent - {object_id}

    def on_object_removed(self, object_id: str) -> None:
        """Incremental maintenance: drop a deleted object from the extent."""
        self._extent = self._extent - {object_id}

    def adopt_extent(
        self, extent: FrozenSet[str], generation: Optional[int] = None
    ) -> FrozenSet[str]:
        """Install an externally computed extent (counts as a refresh).

        The maintenance engine evaluates each lattice node's concept once
        and hands the answer set to every view of the node; going through
        this method keeps the refresh bookkeeping consistent with
        :meth:`refresh`.  ``generation`` stamps the state generation the
        extent was computed against.
        """
        self._extent = frozenset(extent)
        if generation is not None:
            self.extent_generation = generation
        self.refresh_count += 1
        return self._extent

    def replace_extent(
        self, extent: FrozenSet[str], generation: Optional[int] = None
    ) -> FrozenSet[str]:
        """Install an extent *without* counting a refresh.

        Used by the async tier to publish set-algebra results (discards
        staged against a pinned snapshot) whose synchronous counterpart is
        :meth:`discard_objects`, which does not bump ``refresh_count``
        either -- keeping the two tiers' bookkeeping byte-identical.
        """
        self._extent = frozenset(extent)
        if generation is not None:
            self.extent_generation = generation
        return self._extent

    def discard_objects(self, objects, generation: Optional[int] = None) -> None:
        """Drop objects from the stored extent without re-evaluating.

        Sound whenever the objects provably left the view: deleted objects,
        or touched objects that no longer belong to a subsuming ancestor
        (the lattice-pruned maintenance case).
        """
        self._extent = self._extent - frozenset(objects)
        if generation is not None:
            self.extent_generation = generation

    # -- access ------------------------------------------------------------------

    @property
    def extent(self) -> FrozenSet[str]:
        """The stored answer set of the view (as of the last refresh)."""
        self.access_count += 1
        return self._extent

    @property
    def stored_extent(self) -> FrozenSet[str]:
        """The stored answer set without counting as an access (diagnostics)."""
        return self._extent

    @property
    def size(self) -> int:
        """Number of stored objects (without counting as an access)."""
        return len(self._extent)

    def __repr__(self) -> str:
        return f"MaterializedView({self.name!r}, |extent|={len(self._extent)})"


class ViewCatalog:
    """The registry of materialized views the optimizer consults.

    Besides the name → view mapping the catalog maintains a **classified
    view lattice** (:class:`~repro.database.lattice.ViewLattice`): the
    transitive reduction of the Σ-subsumption order over the registered
    views, kept incrementally up to date on every ``register``/``unregister``.
    :meth:`lattice_subsumers` answers "which views subsume this query?" by a
    top-down traversal that prunes every descendant of a non-subsuming view,
    so matching cost follows the answer frontier instead of the catalog size.
    ``lattice=False`` disables classification entirely; the optimizer then
    falls back to the flat scan (the executable specification).

    Iteration order is **registration order** (and therefore deterministic);
    re-registering an existing name replaces the old view and moves the name
    to the end of the order.
    """

    def __init__(
        self,
        dl_schema: Optional[DLSchema] = None,
        *,
        checker=None,
        lattice: bool = True,
    ) -> None:
        self.dl_schema = dl_schema
        self.use_lattice = lattice
        self._views: Dict[str, MaterializedView] = {}
        self._evaluator = QueryEvaluator(dl_schema)
        self._checker = checker
        self._lattice = ViewLattice()
        self._maintenance_listeners: List[object] = []

    # -- maintenance listeners --------------------------------------------------

    def add_maintenance_listener(self, listener) -> None:
        """Attach a registration listener (``on_view_registered/_unregistered``).

        The maintenance engine (:mod:`repro.database.maintenance`) uses this
        to keep its relevance index aligned with the catalog.
        """
        if listener not in self._maintenance_listeners:
            self._maintenance_listeners.append(listener)

    def remove_maintenance_listener(self, listener) -> None:
        """Detach a previously attached registration listener (no-op if absent)."""
        if listener in self._maintenance_listeners:
            self._maintenance_listeners.remove(listener)

    def _view_admitted(self, view: MaterializedView) -> None:
        for listener in list(self._maintenance_listeners):
            listener.on_view_registered(view)

    def _view_dropped(self, name: str) -> None:
        for listener in list(self._maintenance_listeners):
            listener.on_view_unregistered(name)

    # -- the classifying checker -------------------------------------------------

    @property
    def checker(self):
        """The subsumption checker that classifies this catalog's lattice.

        Created lazily from the ``DL`` schema's ``SL`` abstraction (or the
        empty schema) when none was supplied; the optimizer installs its own
        checker via :meth:`adopt_checker` so catalog and query matching agree
        on Σ and share memo tables.
        """
        if self._checker is None:
            from ..core.checker import SubsumptionChecker

            schema = schema_to_sl(self.dl_schema) if self.dl_schema is not None else None
            self._checker = SubsumptionChecker(schema)
        return self._checker

    def adopt_checker(self, checker) -> None:
        """Classify with ``checker`` from now on, reclassifying if needed.

        A no-op (bar the swap) only when the new checker decides the *same
        subsumption relation* -- same schema and same ``use_repair_rule``
        (the naive/indexed engine choice provably decides identically) --
        since only then are the existing lattice edges still correct.
        """
        if self._checker is checker:
            return
        same_relation = (
            self._checker is not None
            and self._checker.schema == checker.schema
            and self._checker.use_repair_rule == checker.use_repair_rule
        )
        rebuild = self.use_lattice and bool(self._views) and not same_relation
        self._checker = checker
        if rebuild:
            self._rebuild_lattice()

    def _rebuild_lattice(self) -> None:
        self._lattice = ViewLattice()
        if self.use_lattice:
            for view in self._views.values():
                self._lattice.insert(view, self.checker)

    def set_lattice_enabled(self, enabled: bool) -> None:
        """Switch between classified and flat matching, (re)classifying as needed."""
        if enabled == self.use_lattice:
            return
        self.use_lattice = enabled
        self._rebuild_lattice()

    # -- registration -----------------------------------------------------------

    def _admit(self, view: MaterializedView) -> MaterializedView:
        """Insert a constructed view: dedupe its name, then classify it."""
        if view.name in self._views:
            self.unregister(view.name)
        self._views[view.name] = view
        if self.use_lattice:
            self._lattice.insert(view, self.checker)
        self._view_admitted(view)
        return view

    def register(
        self,
        definition: QueryClassDecl,
        state: Optional[DatabaseState] = None,
        name: Optional[str] = None,
    ) -> MaterializedView:
        """Register (and optionally immediately materialize) a view.

        Raises :class:`~repro.core.errors.NonStructuralViewError` if the
        query class has a constraint clause.
        """
        concept = query_class_to_concept(definition, self.dl_schema)
        view = self._admit(MaterializedView(name or definition.name, definition, concept))
        if state is not None:
            view.refresh(state, self._evaluator)
        return view

    def register_concept(
        self,
        name: str,
        concept: Concept,
        definition: Optional[QueryClassDecl] = None,
    ) -> MaterializedView:
        """Register a view given directly as a ``QL`` concept (no DL source).

        Used by the synthetic workloads, which generate abstract concepts;
        a trivial structural :class:`~repro.dl.ast.QueryClassDecl` shell is
        created when none is supplied.
        """
        definition = definition or QueryClassDecl(name=name)
        return self._admit(MaterializedView(name, definition, concept))

    def unregister(self, name: str) -> None:
        """Drop a view from the catalog, repairing the lattice around it."""
        if self._views.pop(name, None) is not None:
            self._lattice.remove(name)
            self._view_dropped(name)

    # -- batched registration -----------------------------------------------

    def register_batch(
        self,
        items,
        state: Optional[DatabaseState] = None,
        *,
        backend: str = "thread",
        shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        statistics=None,
    ) -> List[MaterializedView]:
        """Register a batch of views, classifying them in parallel.

        ``items`` may mix :class:`~repro.dl.ast.QueryClassDecl` definitions
        and ``(name, concept)`` pairs.  The result is *identical* to calling
        :meth:`register` once per item in order (property-tested): phase A
        merely warms the decision caches by running every item's
        classification probes concurrently against the frozen lattice
        (:func:`repro.optimizer.parallel.classify_batch`), and the
        sequential merge then replays the spec insertions in input order,
        additionally exploiting the sound told-subsumption seeds and
        profile rejection filters of the batch layer.  A name that appears
        twice keeps only its last occurrence, exactly like sequential
        re-registration; the returned list mirrors the surviving items in
        input order.

        ``backend`` is ``"thread"`` (default), ``"process"`` (fork
        platforms) or ``"serial"``; ``shards``/``max_workers`` bound the
        pool.  ``statistics`` may be a
        :class:`~repro.optimizer.parallel.BatchStatistics` to accumulate
        counters across calls.  The catalog must not be queried or mutated
        concurrently with a running batch.
        """
        from ..optimizer.parallel import (
            BatchCheckerView,
            BatchStatistics,
            LatticeSeedIndex,
            classify_batch,
        )

        # Last occurrence of a duplicated name wins and takes that
        # occurrence's position, exactly like sequential re-registration.
        prepared: Dict[str, MaterializedView] = {}
        for item in items:
            if isinstance(item, QueryClassDecl):
                concept = query_class_to_concept(item, self.dl_schema)
                view = MaterializedView(item.name, item, concept)
            else:
                name, concept = item
                view = MaterializedView(name, QueryClassDecl(name=name), concept)
            prepared.pop(view.name, None)
            prepared[view.name] = view
        batch = list(prepared.values())

        if statistics is None:
            statistics = BatchStatistics()
        if self.use_lattice and batch:
            profiles: Dict[int, object] = {}
            classify_batch(
                self,
                batch,
                backend=backend,
                shards=shards,
                max_workers=max_workers,
                statistics=statistics,
                profiles=profiles,
            )
            merge_checker = BatchCheckerView(
                self.checker, profiles, statistics=statistics, direct=True
            )
            # The merge phase seeds each insertion's told subsumptions from
            # an *incrementally maintained* conjunct-id posting index over
            # the live DAG: per-insertion cost follows the posting lists the
            # concept hits, not the catalog size (seed_against_lattice, the
            # linear pass, remains the executable spec).
            seeder = LatticeSeedIndex(self._lattice)
            for view in batch:
                if view.name in self._views:
                    node_before = self._lattice.node_of(view.name)
                    self.unregister(view.name)
                    if node_before is not None and not node_before.views:
                        seeder.discard_node(node_before)
                seeder.seed_positives(merge_checker, view.concept)
                self._views[view.name] = view
                self._lattice.insert(view, merge_checker)
                seeder.add_node(self._lattice.node_of(view.name))
                self._view_admitted(view)
        else:
            for view in batch:
                self._admit(view)
        if state is not None:
            for view in batch:
                view.refresh(state, self._evaluator)
        return batch

    # -- matching ---------------------------------------------------------------

    def lattice_subsumers(
        self, concept: Concept, statistics: Optional[LatticeMatchStats] = None
    ) -> List[MaterializedView]:
        """All views whose concept subsumes ``concept``, via the lattice.

        Returns the same set as the flat scan (property-tested in
        ``tests/optimizer/test_lattice_equivalence.py``) in unspecified
        order; callers sort by their preference (the optimizer: extent size).
        Raises :class:`RuntimeError` when the catalog was built with
        ``lattice=False`` (the lattice is empty then, and silently answering
        "no subsumers" would be wrong).
        """
        if not self.use_lattice:
            raise RuntimeError(
                "this catalog was built with lattice=False; use the flat scan "
                "(SemanticQueryOptimizer.subsuming_views) or set_lattice_enabled(True)"
            )
        return self._lattice.subsumers(concept, self.checker, statistics)

    @property
    def lattice(self) -> ViewLattice:
        """The underlying classified DAG (read access for tests/diagnostics)."""
        return self._lattice

    # -- access ---------------------------------------------------------------------

    def __iter__(self) -> Iterator[MaterializedView]:
        """Iterate in registration order (insertion-ordered, deterministic)."""
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        """``True`` iff a view of that name is currently registered."""
        return name in self._views

    def get(self, name: str) -> Optional[MaterializedView]:
        """The registered view of that name, or ``None``."""
        return self._views.get(name)

    def names(self) -> Tuple[str, ...]:
        """View names in registration order."""
        return tuple(self._views)

    # -- maintenance --------------------------------------------------------------------

    def refresh_all(self, state: DatabaseState) -> None:
        """Re-materialize every registered view over the given state."""
        for view in self._views.values():
            view.refresh(state, self._evaluator)

    def regenerate_extents(self, source) -> None:
        """Re-derive every extent from ``source`` (a state or snapshot).

        The crash-recovery path: each *distinct* concept is evaluated once
        (views sharing a concept share the answer set) and every view
        adopts the result stamped with the source's generation, so a
        recovered catalog serves a single consistent cut.  Unlike
        :meth:`refresh_all`, this accepts a pinned
        :class:`~repro.database.store.StateSnapshot` as well as a live
        state.
        """
        from ..concepts.intern import concept_id

        generation = getattr(source, "generation", None)
        memo: Dict[int, FrozenSet[str]] = {}
        for view in self._views.values():
            key = concept_id(view.concept)
            if key not in memo:
                memo[key] = self._evaluator.concept_answers(view.concept, source)
            view.adopt_extent(memo[key], generation)

    def notify_object_added(self, object_id: str, state: DatabaseState) -> None:
        """Propagate an insertion to every view (incremental maintenance)."""
        for view in self._views.values():
            view.on_object_added(object_id, state, self._evaluator)

    def notify_object_removed(self, object_id: str) -> None:
        """Propagate a deletion to every view."""
        for view in self._views.values():
            view.on_object_removed(object_id)
