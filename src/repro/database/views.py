"""Materialized views over database states (Sections 1 and 2.2).

A *view* is a query class without a constraint clause (purely structural);
*materialization* means that membership of objects in the view, although
derivable by the view definition, is stored explicitly so that access to the
view is as fast as to any other class.  The optimizer then uses a subsuming
view's stored extension to restrict the search space of new queries.

:class:`MaterializedView` holds one view together with its stored extent and
refresh bookkeeping; :class:`ViewCatalog` is the registry the optimizer
scans.  Registration enforces the paper's soundness requirement: queries
with a non-structural part are rejected as views
(:class:`~repro.core.errors.NonStructuralViewError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..concepts.normalize import normalize_concept
from ..concepts.syntax import Concept
from ..core.errors import NonStructuralViewError
from ..dl.abstraction import query_class_to_concept
from ..dl.ast import DLSchema, QueryClassDecl
from .query_eval import QueryEvaluator
from .store import DatabaseState

__all__ = ["MaterializedView", "ViewCatalog"]


class MaterializedView:
    """One materialized view: definition, abstract concept, stored extent."""

    def __init__(
        self,
        name: str,
        definition: QueryClassDecl,
        concept: Concept,
    ) -> None:
        if not definition.is_structural:
            raise NonStructuralViewError(
                f"query class {definition.name!r} has a constraint clause and "
                "cannot be materialized as a view (its structural part would "
                "not capture it completely)"
            )
        self.name = name
        self.definition = definition
        self.concept = normalize_concept(concept)
        self._extent: FrozenSet[str] = frozenset()
        self.refresh_count = 0
        self.access_count = 0

    # -- maintenance -----------------------------------------------------------

    def refresh(self, state: DatabaseState, evaluator: QueryEvaluator) -> FrozenSet[str]:
        """Recompute and store the view extension over the given state.

        Views are structural, so their answer set equals the extension of
        their ``QL`` concept restricted to the stored objects.
        """
        self._extent = evaluator.concept_answers(self.concept, state)
        self.refresh_count += 1
        return self._extent

    def on_object_added(
        self, object_id: str, state: DatabaseState, evaluator: QueryEvaluator
    ) -> None:
        """Incremental maintenance: re-evaluate only the changed object."""
        matches = evaluator.concept_answers(self.concept, state, candidates=[object_id])
        if matches:
            self._extent = self._extent | matches
        else:
            self._extent = self._extent - {object_id}

    def on_object_removed(self, object_id: str) -> None:
        """Incremental maintenance: drop a deleted object from the extent."""
        self._extent = self._extent - {object_id}

    # -- access ------------------------------------------------------------------

    @property
    def extent(self) -> FrozenSet[str]:
        """The stored answer set of the view (as of the last refresh)."""
        self.access_count += 1
        return self._extent

    @property
    def size(self) -> int:
        """Number of stored objects (without counting as an access)."""
        return len(self._extent)

    def __repr__(self) -> str:
        return f"MaterializedView({self.name!r}, |extent|={len(self._extent)})"


class ViewCatalog:
    """The registry of materialized views the optimizer consults."""

    def __init__(self, dl_schema: Optional[DLSchema] = None) -> None:
        self.dl_schema = dl_schema
        self._views: Dict[str, MaterializedView] = {}
        self._evaluator = QueryEvaluator(dl_schema)

    # -- registration -----------------------------------------------------------

    def register(
        self,
        definition: QueryClassDecl,
        state: Optional[DatabaseState] = None,
        name: Optional[str] = None,
    ) -> MaterializedView:
        """Register (and optionally immediately materialize) a view.

        Raises :class:`~repro.core.errors.NonStructuralViewError` if the
        query class has a constraint clause.
        """
        concept = query_class_to_concept(definition, self.dl_schema)
        view = MaterializedView(name or definition.name, definition, concept)
        self._views[view.name] = view
        if state is not None:
            view.refresh(state, self._evaluator)
        return view

    def register_concept(
        self,
        name: str,
        concept: Concept,
        definition: Optional[QueryClassDecl] = None,
    ) -> MaterializedView:
        """Register a view given directly as a ``QL`` concept (no DL source).

        Used by the synthetic workloads, which generate abstract concepts;
        a trivial structural :class:`~repro.dl.ast.QueryClassDecl` shell is
        created when none is supplied.
        """
        definition = definition or QueryClassDecl(name=name)
        view = MaterializedView(name, definition, concept)
        self._views[name] = view
        return view

    def unregister(self, name: str) -> None:
        """Drop a view from the catalog."""
        self._views.pop(name, None)

    # -- access ---------------------------------------------------------------------

    def __iter__(self) -> Iterator[MaterializedView]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def get(self, name: str) -> Optional[MaterializedView]:
        return self._views.get(name)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._views)

    # -- maintenance --------------------------------------------------------------------

    def refresh_all(self, state: DatabaseState) -> None:
        """Re-materialize every registered view over the given state."""
        for view in self._views.values():
            view.refresh(state, self._evaluator)

    def notify_object_added(self, object_id: str, state: DatabaseState) -> None:
        """Propagate an insertion to every view (incremental maintenance)."""
        for view in self._views.values():
            view.on_object_added(object_id, state, self._evaluator)

    def notify_object_removed(self, object_id: str) -> None:
        """Propagate a deletion to every view."""
        for view in self._views.values():
            view.on_object_removed(object_id)
