"""The OODB substrate: database states, query evaluation, materialized views."""

from .lattice import LatticeMatchStats, LatticeNode, ViewLattice
from .maintenance import (
    AsyncMaintainer,
    MaintenanceEpoch,
    MaintenanceQueue,
    MaintenanceStatistics,
    RelevanceIndex,
)
from .query_eval import EvaluationStatistics, QueryEvaluator
from .store import (
    AttributeRemoved,
    AttributeSet,
    DatabaseState,
    Delta,
    IntegrityViolation,
    MembershipAsserted,
    MembershipRetracted,
    ObjectAdded,
    ObjectRemoved,
    StateSnapshot,
)
from .views import MaterializedView, ViewCatalog

__all__ = [
    "DatabaseState",
    "StateSnapshot",
    "IntegrityViolation",
    "QueryEvaluator",
    "EvaluationStatistics",
    "MaterializedView",
    "ViewCatalog",
    "ViewLattice",
    "LatticeNode",
    "LatticeMatchStats",
    "MaintenanceQueue",
    "AsyncMaintainer",
    "MaintenanceEpoch",
    "MaintenanceStatistics",
    "RelevanceIndex",
    "Delta",
    "ObjectAdded",
    "ObjectRemoved",
    "MembershipAsserted",
    "MembershipRetracted",
    "AttributeSet",
    "AttributeRemoved",
]
