"""The OODB substrate: database states, query evaluation, materialized views."""

from .lattice import LatticeMatchStats, LatticeNode, ViewLattice
from .maintenance import MaintenanceQueue, MaintenanceStatistics, RelevanceIndex
from .query_eval import EvaluationStatistics, QueryEvaluator
from .store import (
    AttributeRemoved,
    AttributeSet,
    DatabaseState,
    Delta,
    IntegrityViolation,
    MembershipAsserted,
    MembershipRetracted,
    ObjectAdded,
    ObjectRemoved,
)
from .views import MaterializedView, ViewCatalog

__all__ = [
    "DatabaseState",
    "IntegrityViolation",
    "QueryEvaluator",
    "EvaluationStatistics",
    "MaterializedView",
    "ViewCatalog",
    "ViewLattice",
    "LatticeNode",
    "LatticeMatchStats",
    "MaintenanceQueue",
    "MaintenanceStatistics",
    "RelevanceIndex",
    "Delta",
    "ObjectAdded",
    "ObjectRemoved",
    "MembershipAsserted",
    "MembershipRetracted",
    "AttributeSet",
    "AttributeRemoved",
]
