"""The OODB substrate: database states, query evaluation, materialized views."""

from .lattice import LatticeMatchStats, LatticeNode, ViewLattice
from .query_eval import EvaluationStatistics, QueryEvaluator
from .store import DatabaseState, IntegrityViolation
from .views import MaterializedView, ViewCatalog

__all__ = [
    "DatabaseState",
    "IntegrityViolation",
    "QueryEvaluator",
    "EvaluationStatistics",
    "MaterializedView",
    "ViewCatalog",
    "ViewLattice",
    "LatticeNode",
    "LatticeMatchStats",
]
