"""The OODB substrate: database states, query evaluation, materialized views."""

from .cacheserver import DecisionCacheServer, RemoteDecisionCache, cache_namespace
from .commit import CommitScheduler, CommitTicket, DurabilityError
from .failover import (
    FailoverCoordinator,
    FencedOut,
    FencingToken,
    Promotion,
    PromotionReport,
)
from .faults import (
    CircuitBreaker,
    DegradedServing,
    FaultPolicy,
    StalenessError,
    network_fault_policy,
)
from .lattice import LatticeMatchStats, LatticeNode, ViewLattice
from .maintenance import (
    AsyncMaintainer,
    DurableMaintainer,
    MaintenanceEpoch,
    MaintenanceQueue,
    MaintenanceStatistics,
    RecoveryReport,
    RelevanceIndex,
)
from .query_eval import EvaluationStatistics, QueryEvaluator
from .replica import (
    ReplicaConnectionError,
    ReplicaProtocolError,
    ReplicaServer,
    SnapshotReplica,
)
from .store import (
    AttributeRemoved,
    AttributeSet,
    DatabaseState,
    Delta,
    IntegrityViolation,
    MembershipAsserted,
    MembershipRetracted,
    ObjectAdded,
    ObjectRemoved,
    StateSnapshot,
)
from .views import MaterializedView, ViewCatalog
from .wal import EpochRecord, WalError, WriteAheadLog

__all__ = [
    "DatabaseState",
    "StateSnapshot",
    "IntegrityViolation",
    "QueryEvaluator",
    "EvaluationStatistics",
    "MaterializedView",
    "ViewCatalog",
    "ViewLattice",
    "LatticeNode",
    "LatticeMatchStats",
    "MaintenanceQueue",
    "AsyncMaintainer",
    "DurableMaintainer",
    "MaintenanceEpoch",
    "MaintenanceStatistics",
    "RecoveryReport",
    "RelevanceIndex",
    "CommitScheduler",
    "CommitTicket",
    "DurabilityError",
    "FaultPolicy",
    "CircuitBreaker",
    "DegradedServing",
    "StalenessError",
    "network_fault_policy",
    "FailoverCoordinator",
    "FencingToken",
    "FencedOut",
    "Promotion",
    "PromotionReport",
    "WriteAheadLog",
    "WalError",
    "EpochRecord",
    "Delta",
    "ObjectAdded",
    "ObjectRemoved",
    "MembershipAsserted",
    "MembershipRetracted",
    "AttributeSet",
    "AttributeRemoved",
    "DecisionCacheServer",
    "RemoteDecisionCache",
    "cache_namespace",
    "ReplicaServer",
    "SnapshotReplica",
    "ReplicaProtocolError",
    "ReplicaConnectionError",
]
