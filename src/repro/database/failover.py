"""Primary failover: epoch-fenced promotion of a snapshot replica.

The deductive-database design treats the **update stream as the unit of
correctness** -- every commit is a typed-delta epoch, totally ordered by
the commit sequence, durable in the WAL before it is acknowledged.  That
is exactly what makes principled failover possible without consensus
machinery: a promoted primary is *defined* as "some fully applied epoch
prefix, extended by the durable WAL tail", and a stale primary is
*defined* as "any writer whose fencing epoch predates the promotion".

Three pieces:

* :class:`FencingToken` / :class:`FencedOut` -- the fencing protocol.
  The coordinator hands every primary generation a token carrying a
  monotonically increasing **fencing epoch**; the token's check is wired
  into the write path as the :class:`~repro.database.commit.CommitScheduler`'s
  ``fence`` hook, which runs both at batch admission (before any
  mutation) and again under the WAL append fence (before any bytes reach
  the shared log).  Promotion bumps the epoch, so a revived stale
  primary's next write raises :class:`FencedOut` -- a
  :class:`~repro.database.commit.DurabilityError` subclass, because "your
  writes can no longer be acknowledged" is precisely what fencing means.
* :class:`FailoverCoordinator.promote` -- turns a caught-up-as-far-as-
  possible :class:`~repro.database.replica.SnapshotReplica` into a
  primary: recover the durable WAL, rebase the replica onto the newest
  checkpoint if its pinned position predates it, replay the durable
  epoch tail through the replica's own idempotent apply path
  (already-applied sequences are skipped), regenerate extents, truncate
  any torn WAL tail, and re-anchor the commit sequence so new epochs
  continue the recovered numbering.  **No fsync-ACKed commit is lost**:
  an ACK is only ever issued after the covering fsync
  (:mod:`repro.database.commit`), so every ACKed epoch is in the durable
  WAL image the promotion replays.
* :class:`Promotion` -- the running result: the promoted state wired to
  a fenced :class:`~repro.database.commit.CommitScheduler` and a
  WAL-first epoch appender, ready to accept writes and to back a new
  :class:`~repro.database.replica.ReplicaServer`.

The coordinator is deliberately a *local* arbiter (one process decides
the epoch); distributed leader election is out of scope -- the fencing
discipline is the part that must be airtight regardless of who elects.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from .commit import CommitScheduler, DurabilityError
from .faults import FaultPolicy
from .wal import EpochRecord, WriteAheadLog, catalog_identity

__all__ = [
    "FailoverCoordinator",
    "FencedOut",
    "FencingToken",
    "Promotion",
    "PromotionReport",
]


class FencedOut(DurabilityError):
    """A write was rejected because the writer's fencing epoch is stale.

    Raised from the commit gate (before any mutation) and from the WAL
    append path (before any bytes land) of a primary that has been
    superseded by a promotion.  Subclasses
    :class:`~repro.database.commit.DurabilityError`, so existing
    degraded-mode handling (readers keep serving, writers see a typed
    refusal) applies unchanged.
    """

    def __init__(self, *, stale_epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"fenced out: writer epoch {stale_epoch} superseded by "
            f"epoch {current_epoch}; this primary must stand down"
        )
        self.stale_epoch = stale_epoch
        self.current_epoch = current_epoch


@dataclass(frozen=True)
class FencingToken:
    """One primary generation's write credential (a monotonic epoch)."""

    epoch: int


@dataclass(frozen=True)
class PromotionReport:
    """What a promotion recovered and where the new primary starts."""

    #: The new primary's fencing epoch.
    epoch: int
    #: The replica's applied sequence entering the promotion.
    base_sequence: int
    #: The checkpoint the replica was rebased onto (0: tail-only replay).
    checkpoint_sequence: int
    #: Durable epochs replayed on top of the replica's pinned state.
    replayed_epochs: int
    #: The durable WAL's newest sequence (every ACKed commit is <= this).
    durable_sequence: int
    #: The promoted primary's starting commit sequence (>= both of the
    #: above: a replica may have applied shipped-but-unACKed epochs).
    start_sequence: int
    #: The promoted primary's serving generation.
    generation: int
    #: Whether the replica had to rebuild from the WAL checkpoint.
    snapshot_rebuilt: bool


class _EpochAppender:
    """Mutation-log listener: WAL-first append of every committed epoch.

    The minimal durable write path for a promoted primary (the full
    :class:`~repro.database.maintenance.DurableMaintainer` adds async
    flushing and checkpointing on top of the same discipline): buffer the
    epoch's typed deltas, and on commit append one
    :class:`~repro.database.wal.EpochRecord` through the fenced
    scheduler.  A fenced or degraded append surfaces its typed error to
    the committing writer.
    """

    def __init__(self, state, scheduler: CommitScheduler) -> None:
        self.state = state
        self.scheduler = scheduler
        self._deltas: list = []
        self._schema_changed = False

    def on_delta(self, delta) -> None:
        self._deltas.append(delta)

    def on_schema_changed(self) -> None:
        self._schema_changed = True

    def on_commit(self) -> None:
        deltas = tuple(self._deltas)
        schema_changed = self._schema_changed
        self._deltas = []
        self._schema_changed = False
        if not deltas and not schema_changed:
            return
        record = EpochRecord(
            sequence=self.state.commit_sequence,
            generation=self.state.generation,
            deltas=deltas,
            schema_changed=schema_changed,
        )
        ticket = self.scheduler.append(record)
        if ticket.error is not None:
            raise ticket.error


@dataclass
class Promotion:
    """A promoted primary: fenced write path over the recovered state."""

    token: FencingToken
    state: object
    optimizer: object
    scheduler: CommitScheduler
    wal: WriteAheadLog
    report: PromotionReport
    _appender: _EpochAppender = field(repr=False, default=None)

    @property
    def catalog(self):
        """The promoted primary's view catalog (extents regenerated)."""
        return self.optimizer.catalog

    def close(self) -> None:
        """Detach the write path and release WAL handles (idempotent)."""
        self.state.detach_commit_scheduler(self.scheduler)
        if self._appender is not None:
            self.state.unsubscribe(self._appender)
            self._appender = None
        try:
            with self.scheduler.exclusive():
                self.wal.close()
        except OSError:  # pragma: no cover - handle-close race
            pass


class FailoverCoordinator:
    """Hands out fencing epochs and promotes replicas to primary.

    One coordinator arbitrates one primary lineage.  The current primary
    registers (:meth:`register_primary`) and wires the returned token
    into its commit scheduler; :meth:`promote` bumps the fencing epoch
    *first* -- from that instant every write under the old token raises
    :class:`FencedOut` -- and then rebuilds the new primary from the
    replica's pinned state plus the durable WAL tail.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """The current (newest) fencing epoch."""
        with self._lock:
            return self._epoch

    def check(self, token: FencingToken) -> None:
        """Raise :class:`FencedOut` unless ``token`` is the current epoch."""
        with self._lock:
            current = self._epoch
        if token.epoch != current:
            raise FencedOut(stale_epoch=token.epoch, current_epoch=current)

    def guard(self, token: FencingToken):
        """The zero-argument fence callback for a ``CommitScheduler``."""
        return lambda: self.check(token)

    def register_primary(
        self, scheduler: Optional[CommitScheduler] = None
    ) -> FencingToken:
        """Open a new primary generation; optionally wire its fence.

        Bumps the fencing epoch (standing down any previous holder) and
        returns the new token.  When ``scheduler`` is given, its
        ``fence`` hook is pointed at the token's check.
        """
        with self._lock:
            self._epoch += 1
            token = FencingToken(self._epoch)
        if scheduler is not None:
            scheduler.fence = self.guard(token)
        return token

    def promote(
        self,
        replica,
        wal_path: str,
        *,
        schema=None,
        fs=None,
        sync_every: Optional[int] = 1,
        segment_bytes: int = 1 << 20,
        fault_policy: Optional[FaultPolicy] = None,
        strict_catalog: bool = True,
    ) -> Promotion:
        """Promote ``replica`` to primary from the durable WAL at ``wal_path``.

        The replica must have completed at least one snapshot handshake
        (it owns a state, an optimizer and a catalog); it should have
        caught up as far as the dead primary allowed, but any shortfall
        is covered by the WAL replay.  ``schema`` overrides the pinned
        schema when the durable tail carries ``schema_changed`` epochs
        past the replica's position (the delta log does not carry the
        swap itself).  ``strict_catalog`` requires the WAL checkpoint's
        catalog identity to match the replica's.

        Steps, in fencing-safe order: bump the epoch (stale primary
        rejected from here on), recover the durable WAL image, rebase
        onto its checkpoint if the replica predates it, replay the
        durable tail idempotently, regenerate extents, truncate the torn
        tail, re-anchor the commit sequence, and wire a fenced
        WAL-appending commit scheduler to the recovered state.
        """
        if replica.state is None or replica.optimizer is None:
            raise ValueError(
                "promote() needs a replica that has completed its snapshot "
                "handshake (connect() first)"
            )
        token = self.register_primary()
        replica.close()

        wal = WriteAheadLog(
            wal_path, sync_every=sync_every, segment_bytes=segment_bytes, fs=fs
        )
        found = wal.recover()
        base_sequence = replica.applied_sequence
        snapshot_rebuilt = False
        checkpoint_sequence = 0
        if found.checkpoint is not None:
            checkpoint_sequence = found.checkpoint.sequence
            if strict_catalog:
                ours = list(catalog_identity(replica.optimizer.catalog))
                theirs = list(found.checkpoint.catalog)
                if ours != theirs:
                    raise ValueError(
                        "checkpoint catalog identity does not match the "
                        "replica's; pass strict_catalog=False to override"
                    )
            if replica.applied_sequence < found.checkpoint.sequence:
                # The replica's position predates the durable checkpoint:
                # the WAL tail alone cannot bridge the gap, so rebase the
                # replica onto the checkpoint exactly like a late joiner
                # rebasing onto a replica server's fresh base.
                base = found.checkpoint.snapshot
                replica._load_snapshot(
                    {
                        "sequence": found.checkpoint.sequence,
                        "generation": base.generation,
                        "snapshot": base,
                        "schema": schema if schema is not None else base.schema,
                        "catalog": found.checkpoint.catalog,
                    }
                )
                snapshot_rebuilt = True
        replayed = 0
        for record in found.epochs:
            if record.schema_changed and record.sequence > replica.applied_sequence:
                if schema is None:
                    raise ValueError(
                        "the durable tail carries a schema swap past the "
                        "replica's position; pass the post-swap schema"
                    )
                replica.state.schema = schema
            replayed += replica._apply_epoch(record)
        snapshot = replica.state.snapshot()
        replica.optimizer.catalog.regenerate_extents(snapshot)
        wal.reset_to(found)
        start_sequence = max(found.last_sequence, replica.applied_sequence)
        replica.state.reset_commit_sequence(start_sequence)

        scheduler = CommitScheduler(
            wal, policy=fault_policy, fence=self.guard(token)
        )
        appender = _EpochAppender(replica.state, scheduler)
        replica.state.attach_commit_scheduler(scheduler)
        replica.state.subscribe(appender)
        report = PromotionReport(
            epoch=token.epoch,
            base_sequence=base_sequence,
            checkpoint_sequence=checkpoint_sequence,
            replayed_epochs=replayed,
            durable_sequence=found.last_sequence,
            start_sequence=start_sequence,
            generation=snapshot.generation,
            snapshot_rebuilt=snapshot_rebuilt,
        )
        return Promotion(
            token=token,
            state=replica.state,
            optimizer=replica.optimizer,
            scheduler=scheduler,
            wal=wal,
            report=report,
            _appender=appender,
        )
