"""Write-scheduled group commit: tickets, fault policy, degraded mode.

PR 6 made epochs durable, but the WAL append lived inside
:class:`~repro.database.maintenance.DurableMaintainer` and assumed one
mutator thread: sequences were pre-computed on the committing thread, an
injected ``EIO`` crashed the worker instead of degrading, and a second
writer would have raced the numbering.  This module is the commit pipeline
that fixes all three, following SNIPPETS.md's oidadb discipline -- writes
are *scheduled* and serialized through the log while reads stay lock-free
on the last published version:

* the store serializes writer threads (``DatabaseState.batch()`` holds the
  write lock for the whole epoch) and assigns the epoch sequence at commit
  (``DatabaseState.commit_sequence``) -- the maintainer consumes it;
* :meth:`CommitScheduler.append` writes the epoch WAL-first under a
  bounded-retry :class:`FaultPolicy` (transient ``OSError`` -> backoff and
  retry, distinguishing "frame landed, fsync pending" from "frame torn,
  truncate and re-append") and hands back a :class:`CommitTicket`;
* :meth:`CommitTicket.wait_durable` resolves only once the covering fsync
  is acknowledged.  Group commit rides the WAL's ``sync_every`` batching:
  appends do not fsync individually, and the first ticket-waiter becomes
  the *leader* that issues one fsync on behalf of every appended commit --
  N writers, one fsync, N ACKs (via the WAL's durable-watermark
  notification);
* when retries exhaust, the scheduler flips to **read-only degraded
  mode**: pending tickets fail with a typed :class:`DurabilityError`
  carrying the last ACKed sequence, new write batches are rejected at the
  store boundary before they mutate anything, and readers keep serving the
  last published generation untouched.  :meth:`CommitScheduler.heal`
  re-probes the log (torn-tail repair + a real fsync) and resumes writes.

The degraded-mode contract is deliberately honest about what a failed ACK
means: the commit *is* applied in memory and its frame may even survive on
disk -- ``DurabilityError`` says "not acknowledged durable", never
"definitely lost".  The crash oracle's spec is unchanged: recovery lands
on a from-scratch refresh of some ACK-consistent durable prefix, and no
``wait_durable()``-acknowledged commit is ever lost while fsyncs are
honest.

Locking & fencing invariants
----------------------------

Three locks, acquired only in the order ``_sync_lock`` -> ``_wal_lock``
(the *append fence*) -> ``_state_lock`` (a leaf), never the reverse:

* Every WAL mutation -- append, torn-tail repair, checkpoint,
  :meth:`CommitScheduler.heal`, :meth:`CommitScheduler.exclusive` -- runs
  under the append fence.  Appends arrive already serialized by the
  store's write lock; the fence orders them against the *other* threads
  that touch the log.
* ``_sync_lock`` elects exactly one group-commit *leader* at a time.
  The leader takes the fence only twice -- to capture the sync window
  and to adopt its result -- and **the fsync itself runs outside the
  append fence**, so writers keep appending behind the in-flight fsync
  and the next leader acknowledges them all at once.
* ``_state_lock`` guards the ticket table, the durable-watermark mirror
  and the degraded flag; it is never held across I/O, and ticket events
  are set only after it is released.
* A ticket is registered under the append fence *before* its frame is
  appended, and degradation takes the fence before failing tickets --
  so neither an ACK nor a fault declaration can race past a
  concurrently-registered ticket.
* The durability boundary is adopted from the *captured* sync window,
  never from the log's live tail: bytes appended while the out-of-fence
  fsync was in flight stay unacknowledged until the next sync covers
  them.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from .faults import FaultPolicy
from .wal import EpochRecord, WalError, WriteAheadLog

__all__ = [
    "CommitScheduler",
    "CommitTicket",
    "DurabilityError",
    "FaultPolicy",
]


class DurabilityError(WalError):
    """A commit could not be acknowledged durable (typed, with the watermark).

    Raised to writers on the commit path when the WAL's fault policy
    exhausts its retries, and by :meth:`CommitTicket.wait_durable` for
    tickets whose covering fsync never arrived.  ``last_durable_sequence``
    is the newest epoch that *was* fsync-acknowledged when the fault was
    declared -- everything up to it survived, everything after it is
    applied in memory but unacknowledged.  Subclasses :class:`WalError` so
    pre-existing ``except WalError`` failure handling keeps working.
    """

    def __init__(self, message: str, *, last_durable_sequence: int = 0) -> None:
        super().__init__(message)
        self.last_durable_sequence = last_durable_sequence


class CommitTicket:
    """The fsync-ACK handle of one scheduled commit.

    Returned by :meth:`CommitScheduler.append` (reachable as
    ``DatabaseState.last_commit_ticket`` right after a batch commits).
    :meth:`wait_durable` blocks until the covering fsync is acknowledged;
    :attr:`durable`/:attr:`error` answer without blocking.
    """

    __slots__ = ("sequence", "_scheduler", "_event", "_error")

    def __init__(self, sequence: int, scheduler: "CommitScheduler") -> None:
        self.sequence = sequence
        self._scheduler = scheduler
        self._event = threading.Event()
        self._error: Optional[DurabilityError] = None

    @property
    def resolved(self) -> bool:
        """``True`` once the ticket is decided (acknowledged or failed)."""
        return self._event.is_set()

    @property
    def durable(self) -> bool:
        """``True`` iff the commit's covering fsync has been acknowledged."""
        return self._event.is_set() and self._error is None

    @property
    def error(self) -> Optional[DurabilityError]:
        """The failure, when the commit could not be acknowledged durable."""
        return self._error

    def wait_durable(self, timeout: Optional[float] = None) -> bool:
        """Block until the covering fsync is acknowledged.

        Group-commit semantics: if no ``sync_every`` batch boundary has
        flushed this commit yet, the first waiter becomes the leader and
        issues one fsync covering *every* appended commit -- concurrent
        waiters ride the same fsync.  Returns ``True`` on acknowledgment,
        ``False`` on timeout; raises :class:`DurabilityError` when the
        fault policy declared the log unwritable before the ACK arrived.
        """
        return self._scheduler._await_ticket(self, timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "durable" if self.durable else ("failed" if self._error else "pending")
        return f"CommitTicket(sequence={self.sequence}, {state})"


class CommitScheduler:
    """Serializes WAL commits, acknowledges fsyncs, degrades on faults.

    One scheduler guards one :class:`~repro.database.wal.WriteAheadLog`.
    Appends arrive already serialized (the store's write lock orders
    writer threads); the scheduler's own ``_wal_lock`` additionally fences
    them against ticket-driven group-commit flushes, checkpoints and
    :meth:`heal`, which run on other threads.  Attach the scheduler to the
    store (``DatabaseState.attach_commit_scheduler``) to enforce the
    read-only degraded mode at the batch boundary -- writers are rejected
    *before* mutating, so a degraded store never accumulates
    unacknowledgeable epochs.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        *,
        policy: Optional[FaultPolicy] = None,
        fence: Optional[Callable[[], None]] = None,
    ) -> None:
        self.wal = wal
        self.policy = policy if policy is not None else FaultPolicy()
        #: Epoch-fencing hook (see ``repro.database.failover``): called
        #: before admitting a write batch and before every WAL append; a
        #: raised :class:`DurabilityError` subclass rejects the write.  A
        #: stale primary revived after a failover is fenced here -- its
        #: batches never mutate the store and its epochs never reach the
        #: shared log.
        self.fence = fence
        self._wal_lock = threading.RLock()
        #: Serializes group-commit leaders; held *without* ``_wal_lock``
        #: during the leader's fsync so appenders accumulate behind it.
        self._sync_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._tickets: Dict[int, CommitTicket] = {}
        self._durable = wal.durable_sequence
        self._degraded: Optional[BaseException] = None
        self._local = threading.local()
        self._last_ticket: Optional[CommitTicket] = None
        #: Commits acknowledged per leader-issued group fsync (telemetry).
        self.group_acks = 0
        wal.add_sync_listener(self._on_durable)

    # -- introspection -----------------------------------------------------

    @property
    def durable_sequence(self) -> int:
        """The newest fsync-acknowledged epoch sequence."""
        with self._state_lock:
            return self._durable

    @property
    def read_only(self) -> bool:
        """``True`` while degraded: writes are rejected, reads keep serving."""
        return self._degraded is not None

    @property
    def degraded_error(self) -> Optional[BaseException]:
        """The persistent fault that flipped the scheduler read-only."""
        return self._degraded

    @property
    def last_ticket(self) -> Optional[CommitTicket]:
        """The calling thread's most recent ticket (global fallback).

        Thread-local on purpose: under concurrent writers, "the last
        commit" is only well-defined per committing thread.
        """
        ticket = getattr(self._local, "ticket", None)
        return ticket if ticket is not None else self._last_ticket

    def pending_tickets(self) -> int:
        """Unacknowledged, unfailed tickets currently awaiting an fsync."""
        with self._state_lock:
            return len(self._tickets)

    # -- the write path (called under the store's write lock) --------------

    def check_writable(self) -> None:
        """Gate new write batches: raise when fenced or degraded read-only."""
        if self.fence is not None:
            self.fence()
        error = self._degraded
        if error is not None:
            raise DurabilityError(
                "store is in read-only degraded mode after a persistent WAL "
                f"fault ({error}); readers keep serving, heal() resumes writes",
                last_durable_sequence=self.durable_sequence,
            )

    def append(self, record: EpochRecord) -> CommitTicket:
        """Schedule one epoch: WAL-first append under the fault policy.

        Never raises ``OSError``: transient faults are retried with
        backoff, persistent ones flip the scheduler degraded and *fail*
        the returned ticket (callers surface ``ticket.error`` after their
        own bookkeeping).  Simulated-crash ``BaseException``\\ s from the
        fault harness propagate, exactly like a real ``kill -9``.
        """
        ticket = CommitTicket(record.sequence, self)
        self._local.ticket = ticket
        self._last_ticket = ticket
        with self._wal_lock:
            if self.fence is not None:
                # Fencing outranks everything: a stale primary's epoch must
                # never reach the shared log, even if the batch that built
                # it slipped past check_writable() before the promotion.
                try:
                    self.fence()
                except DurabilityError as error:
                    ticket._error = error
                    ticket._event.set()
                    return ticket
            if self._degraded is not None:
                self._fail_ticket(ticket)
                return ticket
            with self._state_lock:
                self._tickets[record.sequence] = ticket
            try:
                self._append_with_retries(record)
            except OSError as error:
                self._enter_degraded(error)
        return ticket

    def _append_with_retries(self, record: EpochRecord) -> None:
        attempt = 0
        while True:
            landed = self.wal.appended_sequence >= record.sequence
            try:
                if landed:
                    # The frame reached the file on an earlier attempt and
                    # only its covering fsync failed: re-appending would
                    # duplicate the sequence (poisoning recovery), so the
                    # retry targets the sync alone.
                    self.wal.sync()
                else:
                    self.wal.append(record)
                return
            except OSError as error:
                if self.wal.appended_sequence < record.sequence:
                    # The frame itself tore: drop the partial bytes before
                    # any retry may append after them.
                    self._discard_torn_tail_quietly()
                attempt += 1
                if not self.policy.should_retry(attempt, error):
                    raise
                self.policy.pause(attempt)

    def _discard_torn_tail_quietly(self) -> None:
        try:
            self.wal.discard_torn_tail()
        except OSError:
            # The repair itself hit the fault; the retry (or degradation)
            # path owns the consequences.
            pass

    # -- acknowledgment ----------------------------------------------------

    def _on_durable(self, sequence: int) -> None:
        """WAL sync listener: resolve every ticket the watermark covers."""
        with self._state_lock:
            self._durable = max(self._durable, sequence)
            covered = [seq for seq in self._tickets if seq <= sequence]
            resolved = [self._tickets.pop(seq) for seq in covered]
        for ticket in resolved:
            ticket._event.set()

    def _await_ticket(self, ticket: CommitTicket, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not ticket._event.is_set():
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                return False
            # Leader election: whoever wins the sync lock fsyncs on behalf
            # of every appended commit; the rest either block here briefly
            # or wake up already acknowledged via the sync listener.
            slice_ = 0.1 if remaining is None else min(remaining, 0.1)
            if not self._sync_lock.acquire(timeout=slice_):
                continue
            try:
                if ticket._event.is_set() or self._degraded is not None:
                    continue
                self._lead_group_sync(slice_)
            finally:
                self._sync_lock.release()
        if ticket._error is not None:
            raise ticket._error
        return True

    def _lead_group_sync(self, fence_timeout: float) -> None:
        """One leader-issued group fsync (``_sync_lock`` held by the caller).

        The append fence is taken only to *capture* the sync window and to
        *adopt* its result -- the fsync itself runs with the fence
        released, so concurrent writers keep appending behind it and the
        next leader acknowledges them all with one fsync.  A held fence
        (an exclusive checkpoint, a degraded-mode heal) simply makes this
        round a no-op; the waiter loop re-tries within its deadline.
        """
        if not self._wal_lock.acquire(timeout=fence_timeout):
            return
        try:
            if self._degraded is not None:
                return
            window = self.wal.sync_window()
        finally:
            self._wal_lock.release()
        if window is None:
            return
        before = self.durable_sequence
        if window["target"] <= before and not window["dir_sync"]:
            return
        attempt = 0
        while True:
            try:
                self.wal.fs.fsync(window["path"])
                if window["dir_sync"]:
                    self.wal.fs.fsync_dir(self.wal.path)
                break
            except OSError as error:
                attempt += 1
                if not self.policy.should_retry(attempt, error):
                    # Take the append fence first: ticket registration
                    # happens under it, so degradation can never miss a
                    # ticket registered concurrently (it is either failed
                    # here or rejected at append entry).
                    with self._wal_lock:
                        self._enter_degraded(error)
                    return
                self.policy.pause(attempt)
        with self._wal_lock:
            self.wal.complete_sync(window)
        self.group_acks += max(0, self.durable_sequence - before)

    def flush(self) -> int:
        """Force one group fsync now; returns the durable watermark.

        Raises :class:`DurabilityError` when the log is (or becomes)
        unwritable.
        """
        with self._wal_lock:
            self.check_writable()
            try:
                self._sync_with_retries()
            except OSError as error:
                self._enter_degraded(error)
                self.check_writable()
        return self.durable_sequence

    def _sync_with_retries(self) -> None:
        attempt = 0
        while True:
            try:
                self.wal.sync()
                return
            except OSError as error:
                attempt += 1
                if not self.policy.should_retry(attempt, error):
                    raise
                self.policy.pause(attempt)

    # -- degradation & healing --------------------------------------------

    def _enter_degraded(self, error: BaseException) -> None:
        with self._state_lock:
            if self._degraded is None:
                self._degraded = error
            pending = list(self._tickets.values())
            self._tickets.clear()
            watermark = self._durable
        for ticket in pending:
            if ticket._error is None:
                ticket._error = DurabilityError(
                    f"commit {ticket.sequence} was not acknowledged durable "
                    f"before the WAL degraded ({error}); it is applied in "
                    "memory and may still be recovered from disk",
                    last_durable_sequence=watermark,
                )
            ticket._event.set()

    def _fail_ticket(self, ticket: CommitTicket) -> None:
        ticket._error = DurabilityError(
            f"commit {ticket.sequence} rejected: the store is in read-only "
            "degraded mode",
            last_durable_sequence=self.durable_sequence,
        )
        ticket._event.set()

    def heal(self) -> bool:
        """Re-probe the log after degradation; resume writes on success.

        Repairs any torn active-segment tail, then issues a real fsync
        through the retry policy -- the probe that proves the device
        answers again.  Returns ``True`` (and clears the degraded flag)
        when the probe succeeds, ``False`` when the fault persists.
        Idempotent; a no-op ``True`` when not degraded.
        """
        with self._wal_lock:
            if self._degraded is None:
                return True
            try:
                self.wal.discard_torn_tail()
                self._sync_with_retries()
            except OSError:
                return False
            with self._state_lock:
                self._degraded = None
        return True

    @contextmanager
    def exclusive(self):
        """Hold the WAL fence (checkpoints, close) against group flushes."""
        with self._wal_lock:
            yield

    # -- compat ------------------------------------------------------------

    def tickets_behind(self, sequence: int) -> List[CommitTicket]:
        """Pending tickets at or below ``sequence`` (diagnostics/tests)."""
        with self._state_lock:
            return [t for s, t in sorted(self._tickets.items()) if s <= sequence]
