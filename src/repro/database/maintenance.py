"""Delta-driven incremental maintenance of materialized views.

The paper's premise is that materialized views answer queries fast *because
their extents are stored and current* -- which makes the maintenance path a
first-class scaling concern.  The original path was the naive one: every
``notify_object_added`` re-evaluated every registered view, so a stream of
updates cost O(catalog) concept evaluations per mutation.  This module is
the delta-driven replacement (the classic relevance-restricted re-checking
of Decker 1994, see PAPERS.md):

* the store's **mutation log** (:mod:`repro.database.store` emits typed
  :class:`~repro.database.store.Delta` records) feeds a
  :class:`MaintenanceQueue`, which coalesces the deltas of one epoch
  (``with state.batch(): ...``) into a set of *relevance keys* and a set of
  *touched objects* and flushes once, on commit;
* a **relevance index** maps the class / attribute / constant names a
  view's concept mentions to the views mentioning them, so a delta batch
  only ever considers views whose definition could possibly react to it
  (``QL`` is negation-free, so a view whose vocabulary is disjoint from the
  delta's provably keeps its extent);
* the touched objects are closed under the attribute edges any registered
  view mentions (in both directions -- paths may invert attributes), which
  is exactly the set of objects whose view membership a delta can reach;
* flushing walks the PR 2 **view lattice** top-down and prunes: a touched
  object that does not belong to a view cannot belong to any of its
  subsumees (extents of subsumees are contained in extents of subsumers),
  so a node whose candidate set empties drops the touched objects from its
  stored extent *without* an evaluation and the verdict propagates down;
* an optional **sharded flush** fans the surviving evaluations over
  :func:`repro.optimizer.parallel.run_shards` workers.

The flat per-view notification loop
(:meth:`~repro.database.views.ViewCatalog.notify_object_added`) stays
untouched as the executable specification, exactly like ``naive=True`` and
``lattice=False`` before it; the property tests in
``tests/database/test_maintenance.py`` check that any interleaving of
mutations flushed through this engine yields extents identical to
re-materializing every view from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..concepts.intern import concept_id
from ..concepts.syntax import Concept, Top
from ..concepts.visitors import (
    constants as concept_constants,
    primitive_attributes,
    primitive_concepts,
)
from .query_eval import QueryEvaluator
from .store import (
    AttributeRemoved,
    AttributeSet,
    DatabaseState,
    Delta,
    MembershipAsserted,
    MembershipRetracted,
    ObjectAdded,
    ObjectRemoved,
)
from .views import MaterializedView, ViewCatalog

__all__ = [
    "MaintenanceStatistics",
    "RelevanceIndex",
    "MaintenanceQueue",
    "relevance_keys",
]

#: Relevance key of views whose extent tracks the whole domain (``⊤``):
#: only object creation/deletion can change them.
DOMAIN_KEY: Tuple[str, str] = ("domain", "")


def _empty_schema_checker():
    """A subsumption checker over the empty schema (shared per process).

    Decides containments that hold over *every* interpretation -- the only
    ones the maintenance walk may prune with, since live update streams
    pass through states that violate Σ (see
    :meth:`MaintenanceQueue._edge_holds_everywhere`).
    """
    global _EMPTY_CHECKER
    if _EMPTY_CHECKER is None:
        from ..concepts.schema import Schema
        from ..core.checker import SubsumptionChecker

        _EMPTY_CHECKER = SubsumptionChecker(Schema.empty(), shared_cache=False)
    return _EMPTY_CHECKER


_EMPTY_CHECKER = None


def relevance_keys(concept: Concept) -> FrozenSet[Tuple[str, str]]:
    """The relevance keys of a (normalized) view concept.

    A key names one part of the interpretation the concept's denotation
    reads: ``("class", A)`` for a primitive concept, ``("attr", P)`` for a
    primitive attribute (inverted uses share the primitive name),
    ``("const", c)`` for a singleton constant, and :data:`DOMAIN_KEY` when
    the concept is ``⊤`` (whose extension is the domain itself).  A delta
    that shares no key with a concept provably leaves its extension
    unchanged -- ``QL`` has no negation or value restriction, so every
    denotation is a monotone function of exactly these pieces.
    """
    keys: Set[Tuple[str, str]] = set()
    if isinstance(concept, Top):
        keys.add(DOMAIN_KEY)
    keys.update(("class", name) for name in primitive_concepts(concept))
    keys.update(("attr", name) for name in primitive_attributes(concept))
    keys.update(("const", name) for name in concept_constants(concept))
    return frozenset(keys)


@dataclass
class MaintenanceStatistics:
    """Counters over the lifetime of one :class:`MaintenanceQueue`."""

    #: Deltas received from the store's mutation log.
    deltas_seen: int = 0
    #: Deltas that added nothing new to the pending epoch (coalesced away).
    deltas_coalesced: int = 0
    #: Flushes that actually had pending work.
    flushes: int = 0
    #: Touched objects examined across flushes (after closure).
    objects_touched: int = 0
    #: Views selected by the relevance index across flushes.
    views_relevant: int = 0
    #: Views whose concept was actually re-evaluated.
    views_evaluated: int = 0
    #: Relevant views updated by set algebra only, because the lattice walk
    #: proved no touched object can enter them.
    views_lattice_pruned: int = 0
    #: Views never examined because the relevance index excluded them.
    views_skipped_irrelevant: int = 0
    #: Deleted objects dropped from stored extents by cheap set discards.
    objects_discarded: int = 0


class RelevanceIndex:
    """Inverted index from relevance keys to the views mentioning them."""

    def __init__(self) -> None:
        self._keys_of: Dict[str, FrozenSet[Tuple[str, str]]] = {}
        self._views_by_key: Dict[Tuple[str, str], Set[str]] = {}
        self._attribute_counts: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._keys_of)

    def add(self, view: MaterializedView) -> None:
        """(Re-)index one view by the vocabulary of its concept."""
        self.discard(view.name)
        keys = relevance_keys(view.concept)
        self._keys_of[view.name] = keys
        for key in keys:
            self._views_by_key.setdefault(key, set()).add(view.name)
            if key[0] == "attr":
                self._attribute_counts[key[1]] = self._attribute_counts.get(key[1], 0) + 1

    def discard(self, name: str) -> None:
        """Drop a view from the index (no-op if absent)."""
        keys = self._keys_of.pop(name, None)
        if keys is None:
            return
        for key in keys:
            bucket = self._views_by_key.get(key)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._views_by_key[key]
            if key[0] == "attr":
                count = self._attribute_counts.get(key[1], 0) - 1
                if count <= 0:
                    self._attribute_counts.pop(key[1], None)
                else:
                    self._attribute_counts[key[1]] = count

    def keys_of(self, name: str) -> FrozenSet[Tuple[str, str]]:
        """The indexed keys of one view (empty if not indexed)."""
        return self._keys_of.get(name, frozenset())

    def views_for(self, keys: Iterable[Tuple[str, str]]) -> Set[str]:
        """Names of every view mentioning at least one of the keys."""
        found: Set[str] = set()
        for key in keys:
            found.update(self._views_by_key.get(key, ()))
        return found

    @property
    def mentioned_attributes(self) -> FrozenSet[str]:
        """Attribute names mentioned by at least one indexed view."""
        return frozenset(self._attribute_counts)


class MaintenanceQueue:
    """Coalesces store deltas per epoch and flushes them through the catalog.

    Attaching the queue subscribes it to the state's mutation log and the
    catalog's registration events; from then on every mutation epoch
    (single mutations auto-commit, ``with state.batch():`` groups many)
    triggers exactly one :meth:`flush`.  Detach with :meth:`close`.

    Parameters
    ----------
    state, catalog:
        The store to watch and the views to maintain.  Views must be
        materialized (refreshed) against the state at attach time -- the
        engine keeps correct extents correct, it does not bootstrap them.
    shards, backend, max_workers:
        When ``shards`` is set, flushes evaluate the surviving views on a
        :func:`repro.optimizer.parallel.run_shards` pool instead of the
        lattice-pruned sequential walk (same resulting extents).
    """

    def __init__(
        self,
        state: DatabaseState,
        catalog: ViewCatalog,
        *,
        shards: Optional[int] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        statistics: Optional[MaintenanceStatistics] = None,
    ) -> None:
        self.state = state
        self.catalog = catalog
        self.shards = shards
        self.backend = backend
        self.max_workers = max_workers
        self.statistics = statistics if statistics is not None else MaintenanceStatistics()
        self._evaluator = QueryEvaluator(catalog.dl_schema)
        self._empty_checker = _empty_schema_checker()
        self._edge_memo: Dict[Tuple[int, int], bool] = {}
        self._class_key_memo: Dict[str, FrozenSet[Tuple[str, str]]] = {}
        self._index = RelevanceIndex()
        for view in catalog:
            self._index.add(view)
        self._touched: Set[str] = set()
        self._keys: Set[Tuple[str, str]] = set()
        self._removed: Set[str] = set()
        self._full_refresh = False
        state.subscribe(self)
        catalog.add_maintenance_listener(self)

    def close(self) -> None:
        """Detach from the store and the catalog (pending work is flushed)."""
        self.flush()
        self.state.unsubscribe(self)
        self.catalog.remove_maintenance_listener(self)

    # -- store listener -------------------------------------------------------

    @property
    def pending(self) -> bool:
        """``True`` while deltas await the next flush."""
        return bool(
            self._touched or self._keys or self._removed or self._full_refresh
        )

    def on_schema_changed(self) -> None:
        """The store swapped its schema: every extent may have moved.

        The hierarchy memo is rebuilt and the next flush re-materializes
        every view outright -- no object-level delta describes an ``isA``
        change, so relevance cannot narrow it.
        """
        self._class_key_memo.clear()
        self._full_refresh = True

    def on_delta(self, delta: Delta) -> None:
        """Absorb one mutation-log record into the pending epoch."""
        stats = self.statistics
        stats.deltas_seen += 1
        before = (len(self._touched), len(self._keys), len(self._removed))
        if isinstance(delta, ObjectAdded):
            self._touched.add(delta.object_id)
            self._keys.add(DOMAIN_KEY)
            self._keys.add(("const", delta.object_id))
        elif isinstance(delta, ObjectRemoved):
            self._touched.add(delta.object_id)
            self._removed.add(delta.object_id)
        elif isinstance(delta, (MembershipAsserted, MembershipRetracted)):
            self._touched.add(delta.object_id)
            self._keys.update(self._class_keys(delta.class_name))
        elif isinstance(delta, (AttributeSet, AttributeRemoved)):
            self._touched.add(delta.subject)
            self._touched.add(delta.value)
            self._keys.add(("attr", delta.attribute))
        else:  # pragma: no cover - future delta kinds must be handled
            raise TypeError(f"unknown delta {delta!r}")
        if (len(self._touched), len(self._keys), len(self._removed)) == before:
            stats.deltas_coalesced += 1

    def _class_keys(self, class_name: str) -> FrozenSet[Tuple[str, str]]:
        """Relevance keys of a membership delta (memoized ``isA`` expansion)."""
        cached = self._class_key_memo.get(class_name)
        if cached is None:
            cached = frozenset(
                ("class", superclass)
                for superclass in self.state.schema.all_superclasses(class_name)
            )
            self._class_key_memo[class_name] = cached
        return cached

    def on_commit(self) -> None:
        """End of a mutation epoch: flush once."""
        self.flush()

    # -- catalog listener -----------------------------------------------------

    def on_view_registered(self, view: MaterializedView) -> None:
        self._index.add(view)

    def on_view_unregistered(self, name: str) -> None:
        self._index.discard(name)

    # -- flushing -------------------------------------------------------------

    def flush(self) -> None:
        """Propagate the pending epoch to every affected view extent."""
        if not self.pending:
            return
        touched, keys, removed = self._touched, self._keys, self._removed
        full_refresh = self._full_refresh
        self._touched, self._keys, self._removed = set(), set(), set()
        self._full_refresh = False
        stats = self.statistics
        stats.flushes += 1
        catalog = self.catalog
        if len(catalog) == 0:
            return
        if full_refresh:
            names = set(catalog.names())
            stats.views_relevant += len(names)
            if self.shards is not None and self.shards > 1:
                self._flush_sharded(names)
            else:
                self._flush_flat(names)
            return

        # Deleted objects leave every extent; a set discard per view is all
        # the spec's notify_object_removed ever did, and it needs no
        # evaluation, so it is not routed through relevance at all.
        if removed:
            dropped = frozenset(removed)
            for view in catalog:
                view.discard_objects(dropped)
            stats.objects_discarded += len(dropped)

        relevant = self._index.views_for(keys)
        stats.views_relevant += len(relevant)
        stats.views_skipped_irrelevant += len(catalog) - len(relevant)
        if not relevant:
            return
        if self.shards is not None and self.shards > 1:
            self._flush_sharded(relevant)
        elif catalog.use_lattice:
            # Only the pruning walk consumes the touched set; the other
            # flush modes refresh every relevant view outright, so they
            # skip the closure entirely.
            closed = self._closure(touched)
            stats.objects_touched += len(closed)
            self._flush_lattice(relevant, closed)
        else:
            self._flush_flat(relevant)

    def _closure(self, seeds: Set[str]) -> FrozenSet[str]:
        """Close the touched objects under view-mentioned attribute edges.

        A delta at object ``x`` can change the membership of exactly the
        objects connected to ``x`` through chains of attribute edges some
        view's paths could traverse; edges are walked undirected because
        paths may use inverted attributes.
        """
        attributes = self._index.mentioned_attributes
        seen: Set[str] = set(seeds)
        frontier: List[str] = list(seeds)
        while frontier:
            obj = frontier.pop()
            for attribute, subject, value in self.state.object_pairs(obj):
                if attribute not in attributes:
                    continue
                for other in (subject, value):
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
        return frozenset(seen)

    def _evaluate(self, concept: Concept, memo: Dict[int, FrozenSet[str]]) -> FrozenSet[str]:
        key = concept_id(concept)
        extent = memo.get(key)
        if extent is None:
            extent = self._evaluator.concept_answers(concept, self.state)
            memo[key] = extent
            self.statistics.views_evaluated += 1
        return extent

    def _edge_holds_everywhere(self, child_id: int, child: Concept, parent: Concept) -> bool:
        """``True`` iff ``child ⊑ parent`` holds over *every* interpretation.

        The lattice's edges are Σ-subsumptions, which only guarantee extent
        containment over states that are models of Σ -- and a live update
        stream routinely passes through schema-violating states.  Pruning
        therefore restricts itself to **schema-free** subsumption, which is
        sound over arbitrary finite interpretations.  The dominant
        catalog-growth pattern -- specialization by added conjuncts -- is
        decided by the free told-containment test (``conjuncts(parent) ⊆
        conjuncts(child)``); only the rare remaining edges pay one
        empty-schema completion, memoized per interned pair.
        """
        key = (child_id, concept_id(parent))
        cached = self._edge_memo.get(key)
        if cached is None:
            from ..optimizer.parallel import conjunct_ids

            if conjunct_ids(parent) <= conjunct_ids(child):
                cached = True
            else:
                cached = self._empty_checker.subsumes(child, parent)
            self._edge_memo[key] = cached
        return cached

    def _flush_lattice(self, relevant: Set[str], touched: FrozenSet[str]) -> None:
        """Topological walk of the affected sub-DAG with subsumption pruning.

        A relevant view is *evaluated* only when no parent node rules it
        out: if every touched object is already absent from a parent's
        (updated) extents and the view's concept is contained in one of that
        parent's view concepts over every interpretation, then no touched
        object can have entered the view -- its stored extent is patched by
        dropping the touched objects, and the verdict cascades to the
        descendant cone because the patched extent is itself disjoint from
        the touched set.
        """
        lattice = self.catalog.lattice
        relevant_nodes: Dict[int, object] = {}
        unclassified: Set[str] = set()
        for name in relevant:
            node = lattice.node_of(name)
            if node is not None:
                relevant_nodes[id(node)] = node
            else:
                unclassified.add(name)
        if unclassified:
            # Views registered but (transiently) missing from the DAG fall
            # back to the relevance-restricted flat refresh.
            self._flush_flat(unclassified)
        needed = lattice.ancestor_closure(relevant_nodes.values())
        indegree = {nid: len(node.parents) for nid, node in needed.items()}
        queue = [node for nid, node in needed.items() if not indegree[nid]]
        effective: Dict[int, FrozenSet[str]] = {}
        memo: Dict[int, FrozenSet[str]] = {}
        stats = self.statistics
        while queue:
            node = queue.pop()
            nid = id(node)
            if nid in relevant_nodes:
                blocking = [
                    parent
                    for parent in node.parents
                    if not touched & effective[id(parent)]
                ]
                for view in node.views:
                    view_id = concept_id(view.concept)
                    pruned = any(
                        self._edge_holds_everywhere(view_id, view.concept, other.concept)
                        for parent in blocking
                        for other in parent.views
                    )
                    if pruned:
                        view.discard_objects(touched)
                        stats.views_lattice_pruned += 1
                    else:
                        view.adopt_extent(self._evaluate(view.concept, memo))
            extents = [view.stored_extent for view in node.views]
            effective[nid] = frozenset().union(*extents) if extents else frozenset()
            for child in node.children:
                cid = id(child)
                if cid in indegree:
                    indegree[cid] -= 1
                    if not indegree[cid]:
                        queue.append(child)

    def _flush_flat(self, relevant: Set[str]) -> None:
        """Relevance-restricted flat refresh (``lattice=False`` catalogs)."""
        memo: Dict[int, FrozenSet[str]] = {}
        for name in sorted(relevant):
            view = self.catalog.get(name)
            if view is not None:
                view.adopt_extent(self._evaluate(view.concept, memo))

    def _flush_sharded(self, relevant: Set[str]) -> None:
        """Evaluate the relevant views on a worker pool (same extents)."""
        from ..optimizer.parallel import resolve_shards, run_shards

        names = sorted(relevant)
        unique: List[Tuple[int, Concept]] = []
        seen: Set[int] = set()
        for name in names:
            view = self.catalog.get(name)
            if view is None:
                continue
            key = concept_id(view.concept)
            if key not in seen:
                seen.add(key)
                unique.append((key, view.concept))
        shard_count = resolve_shards(self.shards, len(unique))
        if not shard_count:
            return
        # Warm the generation-cached interpretation before fanning out, so
        # workers share one export instead of racing to build it.
        self.state.to_interpretation()
        evaluator = self._evaluator
        state = self.state

        def worker(shard: int) -> List[Tuple[int, FrozenSet[str]]]:
            return [
                (key, evaluator.concept_answers(concept, state))
                for key, concept in unique[shard::shard_count]
            ]

        extents: Dict[int, FrozenSet[str]] = {}
        for results in run_shards(worker, shard_count, self.backend, self.max_workers):
            extents.update(results)
        self.statistics.views_evaluated += len(unique)
        for name in names:
            view = self.catalog.get(name)
            if view is not None:
                view.adopt_extent(extents[concept_id(view.concept)])
