"""Delta-driven incremental maintenance of materialized views.

The paper's premise is that materialized views answer queries fast *because
their extents are stored and current* -- which makes the maintenance path a
first-class scaling concern.  The original path was the naive one: every
``notify_object_added`` re-evaluated every registered view, so a stream of
updates cost O(catalog) concept evaluations per mutation.  This module is
the delta-driven replacement (the classic relevance-restricted re-checking
of Decker 1994, see PAPERS.md):

* the store's **mutation log** (:mod:`repro.database.store` emits typed
  :class:`~repro.database.store.Delta` records) feeds a
  :class:`MaintenanceQueue`, which coalesces the deltas of one epoch
  (``with state.batch(): ...``) into a set of *relevance keys* and a set of
  *touched objects* and flushes once, on commit;
* a **relevance index** maps the class / attribute / constant names a
  view's concept mentions to the views mentioning them, so a delta batch
  only ever considers views whose definition could possibly react to it
  (``QL`` is negation-free, so a view whose vocabulary is disjoint from the
  delta's provably keeps its extent);
* the touched objects are closed under the attribute edges any registered
  view mentions (in both directions -- paths may invert attributes), which
  is exactly the set of objects whose view membership a delta can reach;
* flushing walks the PR 2 **view lattice** top-down and prunes: a touched
  object that does not belong to a view cannot belong to any of its
  subsumees (extents of subsumees are contained in extents of subsumers),
  so a node whose candidate set empties drops the touched objects from its
  stored extent *without* an evaluation and the verdict propagates down;
* an optional **sharded flush** fans the surviving evaluations over
  :func:`repro.optimizer.parallel.run_shards` workers.

The module has **three tiers** over the same flush engine:

* :class:`MaintenanceQueue` is the synchronous tier: one flush per commit,
  on the committing thread (the PR 4 behavior, unchanged);
* :class:`AsyncMaintainer` (PR 5) is the asynchronous tier: every commit
  enqueues a :class:`MaintenanceEpoch` -- the epoch's typed deltas plus a
  generation-pinned :class:`~repro.database.store.StateSnapshot` -- to a
  background worker that coalesces up to ``window`` epochs per flush,
  evaluates against the *pinned* snapshot (never the racing live state)
  and publishes the resulting extents atomically, generation-stamped.
  Readers therefore always observe the extents of the last fully-flushed
  generation: a consistent prefix of the commit history, never a torn mix.
  ``sync()``/``drain()`` are flush barriers, ``max_pending`` bounds the
  epoch queue (commits block -- backpressure -- instead of growing it
  without bound), and the unflushed epoch log is crash-safe: deltas are
  idempotent to replay, so :meth:`AsyncMaintainer.replay` re-applies a
  killed maintainer's log and converges to the synchronous tier's result;
* :class:`DurableMaintainer` is the durable tier: the async tier plus a
  write-ahead log (:mod:`repro.database.wal`).  Every committed epoch is
  appended -- CRC-framed, fsync-batched per ``sync_every`` -- to the WAL
  *before* it is enqueued for flushing, periodic checkpoints pickle the
  state snapshot plus catalog identity, and
  :meth:`DurableMaintainer.open` recovers across **process restarts**:
  newest valid checkpoint, replay of the epoch tail (stopping at the
  first torn frame, reporting what was dropped), full extent
  regeneration.  Checkpoints also bound the in-memory epoch log:
  :meth:`AsyncMaintainer.truncate_covered_epochs` drops epochs a durable
  checkpoint subsumes, so a long-running server's log cannot grow without
  bound even when the flush worker has died.

The flat per-view notification loop
(:meth:`~repro.database.views.ViewCatalog.notify_object_added`) stays
untouched as the executable specification, exactly like ``naive=True`` and
``lattice=False`` before it; the property tests in
``tests/database/test_maintenance.py`` and the concurrency oracle in
``tests/database/test_async_maintenance.py`` check that any interleaving of
mutations, windows, barriers and reads yields only extents identical to
re-materializing from scratch at some prefix generation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..concepts.intern import concept_id
from ..concepts.syntax import Concept, Top
from ..concepts.visitors import (
    constants as concept_constants,
    primitive_attributes,
    primitive_concepts,
)
from .query_eval import QueryEvaluator
from .store import (
    AttributeRemoved,
    AttributeSet,
    DatabaseState,
    Delta,
    MembershipAsserted,
    MembershipRetracted,
    ObjectAdded,
    ObjectRemoved,
    StateSnapshot,
)
from .views import MaterializedView, ViewCatalog
from .commit import CommitScheduler, FaultPolicy
from .wal import (
    CheckpointPayload,
    EpochRecord,
    WalError,
    WriteAheadLog,
    catalog_identity,
)

__all__ = [
    "MaintenanceStatistics",
    "RelevanceIndex",
    "MaintenanceQueue",
    "MaintenanceEpoch",
    "AsyncMaintainer",
    "DurableMaintainer",
    "RecoveryReport",
    "relevance_keys",
]

#: Relevance key of views whose extent tracks the whole domain (``⊤``):
#: only object creation/deletion can change them.
DOMAIN_KEY: Tuple[str, str] = ("domain", "")


def _empty_schema_checker():
    """A subsumption checker over the empty schema (shared per process).

    Decides containments that hold over *every* interpretation -- the only
    ones the maintenance walk may prune with, since live update streams
    pass through states that violate Σ (see
    :meth:`_MaintenanceEngine._edge_holds_everywhere`).
    """
    global _EMPTY_CHECKER
    if _EMPTY_CHECKER is None:
        from ..concepts.schema import Schema
        from ..core.checker import SubsumptionChecker

        _EMPTY_CHECKER = SubsumptionChecker(Schema.empty(), shared_cache=False)
    return _EMPTY_CHECKER


_EMPTY_CHECKER = None


def relevance_keys(concept: Concept) -> FrozenSet[Tuple[str, str]]:
    """The relevance keys of a (normalized) view concept.

    A key names one part of the interpretation the concept's denotation
    reads: ``("class", A)`` for a primitive concept, ``("attr", P)`` for a
    primitive attribute (inverted uses share the primitive name),
    ``("const", c)`` for a singleton constant, and :data:`DOMAIN_KEY` when
    the concept is ``⊤`` (whose extension is the domain itself).  A delta
    that shares no key with a concept provably leaves its extension
    unchanged -- ``QL`` has no negation or value restriction, so every
    denotation is a monotone function of exactly these pieces.
    """
    keys: Set[Tuple[str, str]] = set()
    if isinstance(concept, Top):
        keys.add(DOMAIN_KEY)
    keys.update(("class", name) for name in primitive_concepts(concept))
    keys.update(("attr", name) for name in primitive_attributes(concept))
    keys.update(("const", name) for name in concept_constants(concept))
    return frozenset(keys)


@dataclass
class MaintenanceStatistics:
    """Counters over the lifetime of one maintenance engine."""

    #: Deltas received from the store's mutation log.
    deltas_seen: int = 0
    #: Deltas that added nothing new to the pending epoch (coalesced away).
    deltas_coalesced: int = 0
    #: Flushes that actually had pending work.
    flushes: int = 0
    #: Touched objects examined across flushes (after closure).
    objects_touched: int = 0
    #: Views selected by the relevance index across flushes.
    views_relevant: int = 0
    #: Views whose concept was actually re-evaluated.
    views_evaluated: int = 0
    #: Relevant views updated by set algebra only, because the lattice walk
    #: proved no touched object can enter them.
    views_lattice_pruned: int = 0
    #: Views never examined because the relevance index excluded them.
    views_skipped_irrelevant: int = 0
    #: Deleted objects dropped from stored extents by cheap set discards.
    objects_discarded: int = 0
    #: Epochs enqueued to the async worker (async tier only).
    epochs_enqueued: int = 0
    #: Epochs merged into a later epoch's flush by the coalescing window.
    epochs_coalesced: int = 0
    #: Commits that blocked because the bounded epoch queue was full.
    backpressure_waits: int = 0
    #: Epochs re-applied by crash-recovery replay.
    replayed_epochs: int = 0


class RelevanceIndex:
    """Inverted index from relevance keys to the views mentioning them."""

    def __init__(self) -> None:
        self._keys_of: Dict[str, FrozenSet[Tuple[str, str]]] = {}
        self._views_by_key: Dict[Tuple[str, str], Set[str]] = {}
        self._attribute_counts: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._keys_of)

    def add(self, view: MaterializedView) -> None:
        """(Re-)index one view by the vocabulary of its concept."""
        self.discard(view.name)
        keys = relevance_keys(view.concept)
        self._keys_of[view.name] = keys
        for key in keys:
            self._views_by_key.setdefault(key, set()).add(view.name)
            if key[0] == "attr":
                self._attribute_counts[key[1]] = self._attribute_counts.get(key[1], 0) + 1

    def discard(self, name: str) -> None:
        """Drop a view from the index (no-op if absent)."""
        keys = self._keys_of.pop(name, None)
        if keys is None:
            return
        for key in keys:
            bucket = self._views_by_key.get(key)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._views_by_key[key]
            if key[0] == "attr":
                count = self._attribute_counts.get(key[1], 0) - 1
                if count <= 0:
                    self._attribute_counts.pop(key[1], None)
                else:
                    self._attribute_counts[key[1]] = count

    def keys_of(self, name: str) -> FrozenSet[Tuple[str, str]]:
        """The indexed keys of one view (empty if not indexed)."""
        return self._keys_of.get(name, frozenset())

    def views_for(self, keys: Iterable[Tuple[str, str]]) -> Set[str]:
        """Names of every view mentioning at least one of the keys."""
        found: Set[str] = set()
        for key in keys:
            found.update(self._views_by_key.get(key, ()))
        return found

    @property
    def mentioned_attributes(self) -> FrozenSet[str]:
        """Attribute names mentioned by at least one indexed view."""
        return frozenset(self._attribute_counts)


class _PendingEpoch:
    """The coalesced pending work of one (or several merged) epochs."""

    __slots__ = ("touched", "keys", "removed", "full_refresh")

    def __init__(self) -> None:
        self.touched: Set[str] = set()
        self.keys: Set[Tuple[str, str]] = set()
        self.removed: Set[str] = set()
        self.full_refresh = False

    @property
    def empty(self) -> bool:
        """``True`` when nothing is pending (no touches, keys, removals, refresh)."""
        return not (self.touched or self.keys or self.removed or self.full_refresh)

    def size(self) -> Tuple[int, int, int]:
        """``(touched, keys, removed)`` counts, for telemetry and tests."""
        return (len(self.touched), len(self.keys), len(self.removed))


class _DirectSink:
    """Apply flush results to the views immediately (synchronous tier)."""

    __slots__ = ("generation",)

    def __init__(self, generation: Optional[int]) -> None:
        self.generation = generation

    def current(self, view: MaterializedView) -> FrozenSet[str]:
        """The extent deltas build on -- here the live stored one."""
        return view.stored_extent

    def adopt(self, view: MaterializedView, extent: FrozenSet[str]) -> None:
        """Publish a re-evaluated extent to the view immediately."""
        view.adopt_extent(extent, self.generation)

    def discard(self, view: MaterializedView, objects: FrozenSet[str]) -> None:
        """Remove objects from the view's live extent immediately."""
        view.discard_objects(objects, self.generation)


class _StagedSink:
    """Stage flush results, installing them atomically afterwards.

    The async worker computes every new extent against a pinned snapshot
    while readers keep serving the previous generation; :meth:`install`
    (called under the maintainer's publish lock) then swaps all staged
    extents in with one assignment per view, so a reader never observes a
    half-flushed generation.  ``refreshed`` tracks whether the staged value
    came from a re-evaluation (bumps ``refresh_count`` on install, exactly
    like the direct sink's ``adopt``) or from set algebra alone.
    """

    __slots__ = ("generation", "_staged")

    def __init__(self, generation: int) -> None:
        self.generation = generation
        # Insertion-ordered: install() publishes in first-staged order.
        self._staged: Dict[str, Tuple[MaterializedView, FrozenSet[str], bool]] = {}

    def current(self, view: MaterializedView) -> FrozenSet[str]:
        """The staged extent when one exists, else the live stored one."""
        staged = self._staged.get(view.name)
        return staged[1] if staged is not None else view.stored_extent

    def adopt(self, view: MaterializedView, extent: FrozenSet[str]) -> None:
        """Stage a re-evaluated extent (marked refreshed) for :meth:`install`."""
        self._staged[view.name] = (view, frozenset(extent), True)

    def discard(self, view: MaterializedView, objects: FrozenSet[str]) -> None:
        """Stage a set-algebra removal without marking a re-evaluation."""
        staged = self._staged.get(view.name)
        refreshed = staged[2] if staged is not None else False
        self._staged[view.name] = (view, self.current(view) - frozenset(objects), refreshed)

    def install(self) -> None:
        """Swap every staged extent in (caller holds the publish lock)."""
        for view, extent, refreshed in self._staged.values():
            if refreshed:
                view.adopt_extent(extent, self.generation)
            else:
                view.replace_extent(extent, self.generation)


class _MaintenanceEngine:
    """The shared flush machinery of the synchronous and async tiers.

    Holds the relevance index, the evaluator, the pruning memos and the
    flush walk; *how* pending epochs reach :meth:`_flush_pending` -- on the
    committing thread (:class:`MaintenanceQueue`), on a background worker
    (:class:`AsyncMaintainer`) or from a replayed log
    (:meth:`AsyncMaintainer.replay`) -- is the subclasses' policy.  Every
    flush method evaluates against an explicit ``source`` (the live state
    or a pinned :class:`~repro.database.store.StateSnapshot`) and writes
    through an explicit sink, so the same walk serves both tiers.
    """

    def __init__(
        self,
        catalog: ViewCatalog,
        *,
        shards: Optional[int] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        statistics: Optional[MaintenanceStatistics] = None,
    ) -> None:
        self.catalog = catalog
        self.shards = shards
        self.backend = backend
        self.max_workers = max_workers
        self.statistics = statistics if statistics is not None else MaintenanceStatistics()
        self._evaluator = QueryEvaluator(catalog.dl_schema)
        self._empty_checker = _empty_schema_checker()
        self._edge_memo: Dict[Tuple[int, int], bool] = {}
        self._class_key_memo: Dict[str, FrozenSet[Tuple[str, str]]] = {}
        self._class_key_schema: Optional[object] = None
        self._index = RelevanceIndex()
        for view in catalog:
            self._index.add(view)

    # -- epoch absorption ------------------------------------------------------

    def _absorb(self, pending: _PendingEpoch, delta: Delta, schema) -> None:
        """Absorb one mutation-log record into a pending epoch."""
        stats = self.statistics
        stats.deltas_seen += 1
        before = pending.size()
        if isinstance(delta, ObjectAdded):
            pending.touched.add(delta.object_id)
            pending.keys.add(DOMAIN_KEY)
            pending.keys.add(("const", delta.object_id))
        elif isinstance(delta, ObjectRemoved):
            pending.touched.add(delta.object_id)
            pending.removed.add(delta.object_id)
        elif isinstance(delta, (MembershipAsserted, MembershipRetracted)):
            pending.touched.add(delta.object_id)
            pending.keys.update(self._class_keys(delta.class_name, schema))
        elif isinstance(delta, (AttributeSet, AttributeRemoved)):
            pending.touched.add(delta.subject)
            pending.touched.add(delta.value)
            pending.keys.add(("attr", delta.attribute))
        else:  # pragma: no cover - future delta kinds must be handled
            raise TypeError(f"unknown delta {delta!r}")
        if pending.size() == before:
            stats.deltas_coalesced += 1

    def _class_keys(self, class_name: str, schema) -> FrozenSet[Tuple[str, str]]:
        """Relevance keys of a membership delta (memoized ``isA`` expansion)."""
        if schema is not self._class_key_schema:
            # A different hierarchy changes every upward closure.
            self._class_key_memo.clear()
            self._class_key_schema = schema
        cached = self._class_key_memo.get(class_name)
        if cached is None:
            cached = frozenset(
                ("class", superclass)
                for superclass in schema.all_superclasses(class_name)
            )
            self._class_key_memo[class_name] = cached
        return cached

    def _coalesce_epochs(self, records: Sequence["MaintenanceEpoch"]) -> _PendingEpoch:
        """Merge a window of epoch records into one pending flush.

        Relevance keys expand against the *last* record's schema -- the one
        the flush evaluates under; any schema change inside the window
        forces a full refresh anyway.  Shared by the async worker and by
        crash-recovery :meth:`AsyncMaintainer.replay`, whose convergence
        guarantee depends on the two coalescing identically.
        """
        pending = _PendingEpoch()
        schema = records[-1].snapshot.schema
        for record in records:
            if record.schema_changed:
                pending.full_refresh = True
            for delta in record.deltas:
                self._absorb(pending, delta, schema)
        return pending

    # -- catalog listener -----------------------------------------------------

    def on_view_registered(self, view: MaterializedView) -> None:
        """Catalog listener: index a newly registered view for relevance."""
        self._index.add(view)

    def on_view_unregistered(self, name: str) -> None:
        """Catalog listener: forget an unregistered view."""
        self._index.discard(name)

    # -- flushing -------------------------------------------------------------

    def _flush_pending(self, pending: _PendingEpoch, source, sink) -> None:
        """Propagate one pending epoch through the catalog via ``sink``."""
        stats = self.statistics
        stats.flushes += 1
        catalog = self.catalog
        if len(catalog) == 0:
            return
        if pending.full_refresh:
            names = set(catalog.names())
            stats.views_relevant += len(names)
            if self.shards is not None and self.shards > 1:
                self._flush_sharded(names, source, sink)
            else:
                self._flush_flat(names, source, sink)
            return

        # Deleted objects leave every extent; a set discard per view is all
        # the spec's notify_object_removed ever did, and it needs no
        # evaluation, so it is not routed through relevance at all.
        if pending.removed:
            dropped = frozenset(pending.removed)
            for view in catalog:
                sink.discard(view, dropped)
            stats.objects_discarded += len(dropped)

        relevant = self._index.views_for(pending.keys)
        stats.views_relevant += len(relevant)
        stats.views_skipped_irrelevant += len(catalog) - len(relevant)
        if not relevant:
            return
        if self.shards is not None and self.shards > 1:
            self._flush_sharded(relevant, source, sink)
        elif catalog.use_lattice:
            # Only the pruning walk consumes the touched set; the other
            # flush modes refresh every relevant view outright, so they
            # skip the closure entirely.
            closed = self._closure(pending.touched, source)
            stats.objects_touched += len(closed)
            self._flush_lattice(relevant, closed, source, sink)
        else:
            self._flush_flat(relevant, source, sink)

    def _closure(self, seeds: Set[str], source) -> FrozenSet[str]:
        """Close the touched objects under view-mentioned attribute edges.

        A delta at object ``x`` can change the membership of exactly the
        objects connected to ``x`` through chains of attribute edges some
        view's paths could traverse; edges are walked undirected because
        paths may use inverted attributes.
        """
        attributes = self._index.mentioned_attributes
        seen: Set[str] = set(seeds)
        frontier: List[str] = list(seeds)
        while frontier:
            obj = frontier.pop()
            for attribute, subject, value in source.object_pairs(obj):
                if attribute not in attributes:
                    continue
                for other in (subject, value):
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
        return frozenset(seen)

    def _evaluate(
        self, concept: Concept, memo: Dict[int, FrozenSet[str]], source
    ) -> FrozenSet[str]:
        key = concept_id(concept)
        extent = memo.get(key)
        if extent is None:
            extent = self._evaluator.concept_answers(concept, source)
            memo[key] = extent
            self.statistics.views_evaluated += 1
        return extent

    def _edge_holds_everywhere(self, child_id: int, child: Concept, parent: Concept) -> bool:
        """``True`` iff ``child ⊑ parent`` holds over *every* interpretation.

        The lattice's edges are Σ-subsumptions, which only guarantee extent
        containment over states that are models of Σ -- and a live update
        stream routinely passes through schema-violating states.  Pruning
        therefore restricts itself to **schema-free** subsumption, which is
        sound over arbitrary finite interpretations.  The dominant
        catalog-growth pattern -- specialization by added conjuncts -- is
        decided by the free told-containment test (``conjuncts(parent) ⊆
        conjuncts(child)``); only the rare remaining edges pay one
        empty-schema completion, memoized per interned pair.
        """
        key = (child_id, concept_id(parent))
        cached = self._edge_memo.get(key)
        if cached is None:
            from ..optimizer.parallel import conjunct_ids

            if conjunct_ids(parent) <= conjunct_ids(child):
                cached = True
            else:
                cached = self._empty_checker.subsumes(child, parent)
            self._edge_memo[key] = cached
        return cached

    def _flush_lattice(
        self, relevant: Set[str], touched: FrozenSet[str], source, sink
    ) -> None:
        """Topological walk of the affected sub-DAG with subsumption pruning.

        A relevant view is *evaluated* only when no parent node rules it
        out: if every touched object is already absent from a parent's
        (updated) extents and the view's concept is contained in one of that
        parent's view concepts over every interpretation, then no touched
        object can have entered the view -- its stored extent is patched by
        dropping the touched objects, and the verdict cascades to the
        descendant cone because the patched extent is itself disjoint from
        the touched set.
        """
        lattice = self.catalog.lattice
        relevant_nodes: Dict[int, object] = {}
        unclassified: Set[str] = set()
        for name in relevant:
            node = lattice.node_of(name)
            if node is not None:
                relevant_nodes[id(node)] = node
            else:
                unclassified.add(name)
        if unclassified:
            # Views registered but (transiently) missing from the DAG fall
            # back to the relevance-restricted flat refresh.
            self._flush_flat(unclassified, source, sink)
        needed = lattice.ancestor_closure(relevant_nodes.values())
        indegree = {nid: len(node.parents) for nid, node in needed.items()}
        queue = [node for nid, node in needed.items() if not indegree[nid]]
        effective: Dict[int, FrozenSet[str]] = {}
        memo: Dict[int, FrozenSet[str]] = {}
        stats = self.statistics
        while queue:
            node = queue.pop()
            nid = id(node)
            if nid in relevant_nodes:
                blocking = [
                    parent
                    for parent in node.parents
                    if not touched & effective[id(parent)]
                ]
                for view in node.views:
                    view_id = concept_id(view.concept)
                    pruned = any(
                        self._edge_holds_everywhere(view_id, view.concept, other.concept)
                        for parent in blocking
                        for other in parent.views
                    )
                    if pruned:
                        sink.discard(view, touched)
                        stats.views_lattice_pruned += 1
                    else:
                        sink.adopt(view, self._evaluate(view.concept, memo, source))
            extents = [sink.current(view) for view in node.views]
            effective[nid] = frozenset().union(*extents) if extents else frozenset()
            for child in node.children:
                cid = id(child)
                if cid in indegree:
                    indegree[cid] -= 1
                    if not indegree[cid]:
                        queue.append(child)

    def _flush_flat(self, relevant: Set[str], source, sink) -> None:
        """Relevance-restricted flat refresh (``lattice=False`` catalogs)."""
        memo: Dict[int, FrozenSet[str]] = {}
        for name in sorted(relevant):
            view = self.catalog.get(name)
            if view is not None:
                sink.adopt(view, self._evaluate(view.concept, memo, source))

    def _flush_sharded(self, relevant: Set[str], source, sink) -> None:
        """Evaluate the relevant views on a worker pool (same extents)."""
        from ..optimizer.parallel import resolve_shards, run_shards

        names = sorted(relevant)
        unique: List[Tuple[int, Concept]] = []
        seen: Set[int] = set()
        for name in names:
            view = self.catalog.get(name)
            if view is None:
                continue
            key = concept_id(view.concept)
            if key not in seen:
                seen.add(key)
                unique.append((key, view.concept))
        shard_count = resolve_shards(self.shards, len(unique))
        if not shard_count:
            return
        # Warm the generation-cached interpretation before fanning out, so
        # workers share one export instead of racing to build it.
        source.to_interpretation()
        evaluator = self._evaluator

        def worker(shard: int) -> List[Tuple[int, FrozenSet[str]]]:
            """Evaluate this shard's slice of views against the pinned source."""
            return [
                (key, evaluator.concept_answers(concept, source))
                for key, concept in unique[shard::shard_count]
            ]

        extents: Dict[int, FrozenSet[str]] = {}
        for results in run_shards(worker, shard_count, self.backend, self.max_workers):
            extents.update(results)
        self.statistics.views_evaluated += len(unique)
        for name in names:
            view = self.catalog.get(name)
            if view is not None:
                sink.adopt(view, extents[concept_id(view.concept)])


class MaintenanceQueue(_MaintenanceEngine):
    """Coalesces store deltas per epoch and flushes them through the catalog.

    Attaching the queue subscribes it to the state's mutation log and the
    catalog's registration events; from then on every mutation epoch
    (single mutations auto-commit, ``with state.batch():`` groups many)
    triggers exactly one :meth:`flush`, synchronously, on the committing
    thread.  Detach with :meth:`close`.

    Parameters
    ----------
    state, catalog:
        The store to watch and the views to maintain.  Views must be
        materialized (refreshed) against the state at attach time -- the
        engine keeps correct extents correct, it does not bootstrap them.
    shards, backend, max_workers:
        When ``shards`` is set, flushes evaluate the surviving views on a
        :func:`repro.optimizer.parallel.run_shards` pool instead of the
        lattice-pruned sequential walk (same resulting extents).
    """

    def __init__(
        self,
        state: DatabaseState,
        catalog: ViewCatalog,
        *,
        shards: Optional[int] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        statistics: Optional[MaintenanceStatistics] = None,
    ) -> None:
        super().__init__(
            catalog,
            shards=shards,
            backend=backend,
            max_workers=max_workers,
            statistics=statistics,
        )
        self.state = state
        self._pending = _PendingEpoch()
        state.subscribe(self)
        catalog.add_maintenance_listener(self)

    def close(self) -> None:
        """Detach from the store and the catalog (pending work is flushed)."""
        self.flush()
        self.state.unsubscribe(self)
        self.catalog.remove_maintenance_listener(self)

    # -- store listener -------------------------------------------------------

    @property
    def pending(self) -> bool:
        """``True`` while deltas await the next flush."""
        return not self._pending.empty

    def on_schema_changed(self) -> None:
        """The store swapped its schema: every extent may have moved.

        The next flush re-materializes every view outright -- no
        object-level delta describes an ``isA`` change, so relevance cannot
        narrow it (the hierarchy memo invalidates by schema identity).
        """
        self._pending.full_refresh = True

    def on_delta(self, delta: Delta) -> None:
        """Absorb one mutation-log record into the pending epoch."""
        self._absorb(self._pending, delta, self.state.schema)

    def on_commit(self) -> None:
        """End of a mutation epoch: flush once."""
        self.flush()

    # -- flushing -------------------------------------------------------------

    def flush(self) -> None:
        """Propagate the pending epoch to every affected view extent."""
        if self._pending.empty:
            return
        pending, self._pending = self._pending, _PendingEpoch()
        self._flush_pending(pending, self.state, _DirectSink(self.state.generation))


@dataclass(frozen=True)
class MaintenanceEpoch:
    """One committed mutation epoch in the async maintainer's log.

    Carries everything a flush -- or a post-crash replay -- needs: the
    epoch's raw typed deltas (idempotent to replay), whether the schema was
    swapped during the epoch, and the generation-pinned snapshot of the
    state at commit, against which the worker evaluates.
    """

    sequence: int
    generation: int
    deltas: Tuple[Delta, ...]
    schema_changed: bool
    snapshot: StateSnapshot


class AsyncMaintainer(_MaintenanceEngine):
    """Asynchronous maintenance: commit fast, flush in the background.

    Every committed epoch is recorded as a :class:`MaintenanceEpoch` and
    handed to a worker thread; the committing thread returns immediately
    (unless the bounded queue exerts backpressure).  The worker merges up
    to ``window`` queued epochs per flush -- cross-epoch coalescing: deltas
    that cancel or duplicate across epochs are paid for once -- evaluates
    against the *last* merged epoch's pinned snapshot, and publishes all
    resulting extents atomically under the publish lock, stamped with that
    epoch's generation.

    **Consistency model.**  Readers see *consistent-generation serving*:
    at any instant, every stored extent equals the from-scratch refresh of
    the last fully-flushed generation -- a prefix of the commit history.
    Newer epochs are invisible until their flush publishes (bounded
    staleness, never inconsistency).  :meth:`read_extents` returns a
    cross-view consistent cut together with its generation;
    :meth:`serving_state` exposes the pinned snapshot the cut answers for,
    so queries can be evaluated *against the generation being served*.

    **Barriers.**  :meth:`sync` blocks until everything committed before
    the call is flushed; :meth:`drain` is ``sync`` returning the published
    generation; :meth:`close` drains, stops the worker and detaches.

    **Crash safety.**  The unflushed epoch log survives :meth:`kill` (a
    simulated crash); :meth:`replay` re-applies it synchronously and
    converges to exactly the synchronous tier's result, because deltas are
    typed and idempotent to replay.

    **Concurrency contract.**  State mutations may come from one mutator
    thread and reads from any number of reader threads.  *Catalog*
    registration is the exception: :class:`ViewCatalog` mutates its view
    map and lattice before notifying listeners, so registering or
    unregistering views must not race an active flush -- :meth:`sync` (or
    :meth:`pause`) first, register, refresh the new view, then continue.
    The ``_flush_lock`` held by the registration listeners only keeps the
    relevance index consistent with in-flight flushes; it cannot retrofit
    thread safety onto the catalog itself.
    """

    def __init__(
        self,
        state: DatabaseState,
        catalog: ViewCatalog,
        *,
        window: int = 4,
        max_pending: int = 256,
        shards: Optional[int] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        statistics: Optional[MaintenanceStatistics] = None,
        bootstrap: bool = False,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1 epoch")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1 epoch")
        super().__init__(
            catalog,
            shards=shards,
            backend=backend,
            max_workers=max_workers,
            statistics=statistics,
        )
        self.state = state
        self.window = window
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._done = threading.Condition(self._lock)
        self._publish = threading.Lock()
        self._flush_lock = threading.Lock()
        self._log: List[MaintenanceEpoch] = []
        self._epoch_deltas: List[Delta] = []
        self._epoch_schema_changed = False
        self._sequence = 0
        self._flushed_sequence = 0
        self._stopped = False
        self._paused = False
        self._failure: Optional[BaseException] = None
        snapshot = state.snapshot()
        if bootstrap:
            memo: Dict[int, FrozenSet[str]] = {}
            for view in catalog:
                key = concept_id(view.concept)
                if key not in memo:
                    memo[key] = self._evaluator.concept_answers(view.concept, snapshot)
                view.adopt_extent(memo[key], snapshot.generation)
        self._serving = snapshot
        state.subscribe(self)
        catalog.add_maintenance_listener(self)
        self._worker = threading.Thread(
            target=self._run, name="repro-async-maintenance", daemon=True
        )
        self._worker.start()

    # -- store listener (mutator thread) --------------------------------------

    def on_delta(self, delta: Delta) -> None:
        """Record one mutation-log record into the open epoch."""
        self._epoch_deltas.append(delta)

    def on_schema_changed(self) -> None:
        """The store swapped its schema mid-epoch: flag a full refresh."""
        self._epoch_schema_changed = True

    def on_commit(self) -> None:
        """End of a mutation epoch: enqueue it (blocking on backpressure).

        Unlike :meth:`sync`, a full queue does **not** raise while paused:
        the state mutation has already happened, so dropping the epoch
        would desynchronize the catalog forever, and overrunning the bound
        would defeat it.  The commit blocks -- backpressure by design --
        until another thread calls :meth:`resume` (or :meth:`kill`, which
        raises here and leaves the epoch to :meth:`replay`).
        """
        deltas = tuple(self._epoch_deltas)
        schema_changed = self._epoch_schema_changed
        self._epoch_deltas = []
        self._epoch_schema_changed = False
        if not deltas and not schema_changed:
            return
        snapshot = self.state.snapshot()
        with self._lock:
            if (
                len(self._log) >= self.max_pending
                and not self._stopped
                and self._failure is None
            ):
                # Count blocked *commits*, not wakeups: one commit may spin
                # through several notify/re-check rounds before space opens.
                self.statistics.backpressure_waits += 1
            while (
                len(self._log) >= self.max_pending
                and not self._stopped
                and self._failure is None
            ):
                self._done.wait()
            # Record the epoch *unconditionally*: the state mutation has
            # already happened, so even when the worker is dead the log --
            # the crash-safe record replay() recovers from -- must hold
            # this epoch; the queue bound yields to durability once no
            # worker can drain it.  The error (if any) surfaces after.
            # The sequence is store-assigned (bumped before listeners run,
            # under the store's write lock), so concurrent writers cannot
            # race the numbering and the durable tier persists the same
            # number it enqueues.
            self._sequence = self.state.commit_sequence
            self._log.append(
                MaintenanceEpoch(
                    self._sequence,
                    snapshot.generation,
                    deltas,
                    schema_changed,
                    snapshot,
                )
            )
            self.statistics.epochs_enqueued += 1
            self._wake.notify_all()
            if self._failure is not None:
                raise RuntimeError(
                    "async maintenance worker crashed; epoch recorded for replay()"
                ) from self._failure
            if self._stopped:
                raise RuntimeError(
                    "AsyncMaintainer is stopped; epoch recorded for replay()"
                )

    # -- catalog listener ------------------------------------------------------

    def on_view_registered(self, view: MaterializedView) -> None:
        """Catalog listener: index a new view (serialized against flushes)."""
        with self._flush_lock:
            self._index.add(view)

    def on_view_unregistered(self, name: str) -> None:
        """Catalog listener: forget a view (serialized against flushes)."""
        with self._flush_lock:
            self._index.discard(name)

    # -- the worker -------------------------------------------------------------

    def _run(self) -> None:
        try:
            while True:
                with self._lock:
                    while not self._stopped and (self._paused or not self._log):
                        self._wake.wait()
                    if self._stopped:
                        return
                    batch = list(self._log[: self.window])
                self._flush_batch(batch)
                with self._lock:
                    del self._log[: len(batch)]
                    self._flushed_sequence = batch[-1].sequence
                    self._done.notify_all()
        except BaseException as error:  # pragma: no cover - surfaced to callers
            with self._lock:
                self._failure = error
                self._done.notify_all()

    def _flush_batch(self, batch: Sequence[MaintenanceEpoch]) -> None:
        """Merge one window of epochs and flush against the last snapshot."""
        target = batch[-1]
        pending = self._coalesce_epochs(batch)
        self.statistics.epochs_coalesced += len(batch) - 1
        with self._flush_lock:
            sink = _StagedSink(target.generation)
            self._flush_pending(pending, target.snapshot, sink)
            with self._publish:
                sink.install()
                self._serving = target.snapshot

    # -- serving ----------------------------------------------------------------

    @property
    def published_generation(self) -> int:
        """Generation of the last fully-flushed (served) epoch."""
        with self._publish:
            return self._serving.generation

    def serving_state(self) -> StateSnapshot:
        """The pinned snapshot whose generation the stored extents answer for."""
        with self._publish:
            return self._serving

    def serving_cut(
        self, names: Optional[Iterable[str]] = None
    ) -> Tuple[StateSnapshot, Dict[str, FrozenSet[str]]]:
        """The pinned snapshot *and* its extents under one lock acquisition.

        ``serving_state()`` followed by ``read_extents()`` can straddle a
        publish (the worker may install a newer generation between the two
        calls); queries that evaluate against the served snapshot and
        filter through the served extents need both from the same instant.
        """
        with self._publish:
            snapshot = self._serving
            if names is None:
                extents = {view.name: view.stored_extent for view in self.catalog}
            else:
                extents = {}
                for name in names:
                    view = self.catalog.get(name)
                    if view is not None:
                        extents[name] = view.stored_extent
        return snapshot, extents

    def read_extents(
        self, names: Optional[Iterable[str]] = None
    ) -> Tuple[int, Dict[str, FrozenSet[str]]]:
        """A cross-view consistent cut: ``(generation, name -> extent)``.

        Taken under the publish lock, so the returned extents all answer
        for the same fully-flushed generation even while the worker is
        mid-publish.  Lock-free single-view reads (``view.stored_extent``)
        remain prefix-consistent per view; this method additionally
        guarantees consistency *across* views.
        """
        snapshot, extents = self.serving_cut(names)
        return snapshot.generation, extents

    # -- barriers & lifecycle ----------------------------------------------------

    def _raise_if_failed(self) -> None:
        if self._failure is not None:
            raise RuntimeError("async maintenance worker crashed") from self._failure

    @property
    def pending_epochs(self) -> int:
        """Number of committed epochs not yet flushed."""
        with self._lock:
            return len(self._log)

    def unflushed_epochs(self) -> Tuple[MaintenanceEpoch, ...]:
        """The crash-safe log: every committed, not-yet-published epoch."""
        with self._lock:
            return tuple(self._log)

    def truncate_covered_epochs(self, covered_sequence: int) -> int:
        """Drop in-memory epochs that durable storage makes redundant.

        ``covered_sequence`` is the highest epoch sequence some durable
        artifact (a WAL checkpoint, an external snapshot) fully subsumes.
        Only epochs the worker has already flushed -- or, when the worker
        is stopped or crashed, epochs it can *never* flush -- are pruned;
        a live worker's unflushed epochs are untouchable, because the
        worker reads ``self._log[:window]`` and prunes by position, and
        because :meth:`sync` waiters gauge progress by the retained log.
        With a live worker the log therefore never holds flushed epochs
        (the worker deletes them as it publishes) and this call is a
        no-op; its purpose is the dead-worker regime, where
        :meth:`on_commit` appends unconditionally and the log would
        otherwise grow without bound for as long as the process lives.
        Returns the number of epochs pruned.  :meth:`unflushed_epochs`
        keeps its meaning: everything still awaiting an in-memory flush
        survives pruning.
        """
        with self._lock:
            limit = covered_sequence
            if not self._stopped and self._failure is None:
                limit = min(limit, self._flushed_sequence)
            kept = [epoch for epoch in self._log if epoch.sequence > limit]
            pruned = len(self._log) - len(kept)
            if pruned:
                self._log[:] = kept
                self._done.notify_all()
        return pruned

    def pause(self) -> None:
        """Suspend flushing after the in-flight batch (windowing/tests)."""
        with self._lock:
            self._paused = True
            # Wake sync() waiters so they observe the pause and raise
            # instead of sleeping through a barrier that can never clear.
            self._done.notify_all()

    def resume(self) -> None:
        """Resume flushing."""
        with self._lock:
            self._paused = False
            self._wake.notify_all()

    def sync(self, timeout: Optional[float] = None) -> bool:
        """Block until every epoch committed before the call is flushed.

        Returns ``True`` on success, ``False`` on timeout.  Raises
        :class:`RuntimeError` when the barrier can never be reached: the
        worker is paused, stopped, or crashed.
        """
        with self._lock:
            self._raise_if_failed()
            target = self._sequence
            if self._flushed_sequence >= target:
                return True
            if self._paused:
                raise RuntimeError("sync() cannot complete while paused; resume() first")
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._flushed_sequence < target:
                self._raise_if_failed()
                if self._paused:
                    # A pause() issued while we were already waiting: the
                    # worker will never clear the barrier.
                    raise RuntimeError(
                        "sync() cannot complete while paused; resume() first"
                    )
                if self._stopped:
                    raise RuntimeError(
                        "worker stopped with unflushed epochs (recover via replay())"
                    )
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._done.wait(remaining)
        return True

    def drain(self, timeout: Optional[float] = None) -> int:
        """Barrier over everything committed so far; returns the served generation."""
        if not self.sync(timeout):
            raise TimeoutError("drain() timed out awaiting the maintenance worker")
        return self.published_generation

    def close(self) -> None:
        """Drain pending epochs, stop the worker, detach (idempotent).

        Detaching must happen even when the drain barrier fails (a worker
        crash mid-close): a dead maintainer left subscribed would keep
        absorbing -- and erroring on -- every later commit.
        """
        try:
            if self._worker.is_alive() and self._failure is None:
                self.resume()
                with self._lock:
                    stopped = self._stopped
                if not stopped:
                    self.sync()
        finally:
            self.kill()

    def kill(self) -> None:
        """Stop the worker *without* flushing (crash simulation) and detach.

        Unflushed epochs stay in :meth:`unflushed_epochs` for
        :meth:`replay`; the state and catalog are unsubscribed so the dead
        maintainer no longer observes mutations.
        """
        with self._lock:
            self._stopped = True
            self._wake.notify_all()
            self._done.notify_all()
        if self._worker.is_alive() and threading.current_thread() is not self._worker:
            self._worker.join()
        self.state.unsubscribe(self)
        self.catalog.remove_maintenance_listener(self)

    # -- crash recovery -----------------------------------------------------------

    def recover(self) -> Optional[int]:
        """Replay this stopped maintainer's own unflushed log in place.

        The instance-level recovery path: besides re-applying the log (see
        :meth:`replay`), it advances the serving cut -- ``read_extents()``
        / :meth:`serving_state` answer for the recovered generation
        afterwards, keeping the consistent-cut contract intact through a
        crash-and-recover cycle.  Requires a stopped worker (:meth:`kill`).
        """
        with self._lock:
            if not self._stopped:
                raise RuntimeError("recover() requires a stopped maintainer (kill() first)")
            records = tuple(self._log)
        generation = AsyncMaintainer.replay(
            records,
            self.catalog,
            shards=self.shards,
            backend=self.backend,
            max_workers=self.max_workers,
            statistics=self.statistics,
        )
        if records:
            with self._publish:
                self._serving = records[-1].snapshot
            with self._lock:
                self._flushed_sequence = records[-1].sequence
                del self._log[: len(records)]
        return generation

    @classmethod
    def replay(
        cls,
        epochs: Iterable[MaintenanceEpoch],
        catalog: ViewCatalog,
        *,
        shards: Optional[int] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        statistics: Optional[MaintenanceStatistics] = None,
    ) -> Optional[int]:
        """Re-apply a crashed maintainer's complete unflushed epoch log.

        The records are coalesced like one window and flushed against the
        *last* record's pinned snapshot -- exactly what the crashed worker
        would eventually have published.  Deltas are idempotent to replay,
        so replaying twice (or after a partial earlier flush) converges to
        the same extents.  Returns the published generation, or ``None``
        when the log is empty.

        This classmethod targets the real crash scenario, where the dead
        maintainer object is gone and only its persisted log remains; when
        the instance is still at hand, prefer :meth:`recover`, which also
        advances the instance's serving cut to the recovered generation.
        """
        records = sorted(epochs, key=lambda epoch: epoch.sequence)
        if not records:
            return None
        engine = _MaintenanceEngine(
            catalog,
            shards=shards,
            backend=backend,
            max_workers=max_workers,
            statistics=statistics,
        )
        target = records[-1]
        pending = engine._coalesce_epochs(records)
        engine.statistics.replayed_epochs += len(records)
        engine._flush_pending(pending, target.snapshot, _DirectSink(target.generation))
        return target.generation


# ---------------------------------------------------------------------------
# The durable tier
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`DurableMaintainer.open` rebuilt from disk.

    ``checkpoint_sequence`` is the epoch the loaded checkpoint covered
    (``0`` when recovery started from genesis), ``replayed_epochs`` how
    many WAL tail records were re-applied past it, and
    ``recovered_sequence`` the resulting epoch sequence -- the state
    equals the from-scratch build of exactly that prefix of commits.
    ``dropped_bytes`` / ``dropped_records`` / ``corrupt_checkpoints``
    surface what torn tails and bad frames cost (recovery never crashes
    on them; it stops at the first bad frame and reports).
    ``generation`` is the recovered state's process-local generation.
    """

    checkpoint_sequence: int
    replayed_epochs: int
    recovered_sequence: int
    dropped_bytes: int
    dropped_records: int
    corrupt_checkpoints: Tuple[str, ...]
    generation: int


def _require_catalog_identity(recorded, catalog: ViewCatalog) -> None:
    """Raise :class:`WalError` unless the checkpoint's catalog matches.

    Compared by structural equality of the normalized concepts, not by
    intern id: the recorded side crossed a pickle boundary and equal ids
    are only guaranteed for ids issued while the intern tables are live
    (after ``clear_intern_tables`` an old canonical instance embedded in
    one side can split otherwise-equal structures onto distinct ids).
    """
    from ..concepts.normalize import normalize_concept

    current = {view.name: normalize_concept(view.concept) for view in catalog}
    loaded = {name: normalize_concept(concept) for name, concept in recorded}
    if current != loaded:
        missing = sorted(set(loaded) - set(current))
        added = sorted(set(current) - set(loaded))
        changed = sorted(
            name for name in set(current) & set(loaded) if current[name] != loaded[name]
        )
        raise WalError(
            "checkpoint catalog identity does not match the supplied catalog "
            f"(missing={missing}, added={added}, changed={changed}); recover "
            "with the catalog the log was written under, or pass "
            "strict_catalog=False to rebuild extents for the new catalog"
        )


class DurableMaintainer(AsyncMaintainer):
    """The durable tier: :class:`AsyncMaintainer` over a write-ahead log.

    **Commit path.**  Every committed epoch's typed deltas are appended to
    the WAL -- CRC-framed, fsync-batched per ``sync_every`` -- *before*
    the epoch is enqueued for asynchronous flushing: once
    :attr:`WriteAheadLog.durable_sequence` covers a commit, no crash can
    lose it.  Every ``checkpoint_every`` commits a checkpoint pickles the
    full state snapshot plus the catalog identity, compacts the log
    segments it subsumes and prunes the in-memory epoch log
    (:meth:`AsyncMaintainer.truncate_covered_epochs`).

    **Recovery.**  :meth:`open` rebuilds everything in a fresh process:
    newest valid checkpoint, replay of the epoch tail through
    :meth:`~repro.database.store.DatabaseState.apply_delta` (stopping at
    the first torn frame -- see :meth:`WriteAheadLog.recover`), full
    extent regeneration, and a :attr:`recovery_report` saying exactly
    what was recovered and what was dropped.  Recovery is idempotent:
    opening the same directory twice (without new commits) yields
    identical states.

    **Sequencing contract.**  Epoch sequences are **store-assigned**:
    ``DatabaseState.batch()`` serializes writer threads on the store's
    write lock and bumps :attr:`~repro.database.store.DatabaseState.commit_sequence`
    once per effective commit, before listeners run.  The WAL record
    written here and the in-memory epoch the base class enqueues both
    carry that number, so concurrent writers can never race the
    numbering.

    **Failure semantics.**  WAL I/O runs through a
    :class:`~repro.database.commit.CommitScheduler` under a bounded-retry
    :class:`~repro.database.commit.FaultPolicy`: transient ``OSError``\\ s
    are retried with backoff (torn frames are truncated before the
    re-append), and a persistent fault flips the store to **read-only
    degraded mode** -- the failed commit still enqueues in memory (the
    state mutation already happened, dropping it would desynchronize the
    catalog) and then raises a typed
    :class:`~repro.database.commit.DurabilityError` carrying the last
    ACKed sequence; later write batches are rejected at the store
    boundary while readers keep serving the last published generation,
    and :meth:`heal` re-probes the log and resumes.  Each commit's
    fsync-ACK handle is its :class:`~repro.database.commit.CommitTicket`
    (``state.last_commit_ticket``); with ``sync_every > 1`` tickets
    resolve by group commit -- N writers share one fsync.  A dead flush
    worker does not stop WAL appends or checkpoints: durability outlives
    the serving tier.
    """

    def __init__(
        self,
        state: DatabaseState,
        catalog: ViewCatalog,
        *,
        path: Optional[str] = None,
        wal: Optional[WriteAheadLog] = None,
        sync_every: Optional[int] = 1,
        checkpoint_every: Optional[int] = 32,
        segment_bytes: int = 1 << 20,
        fs=None,
        fault_policy: Optional[FaultPolicy] = None,
        **async_kwargs,
    ) -> None:
        if wal is None:
            if path is None:
                raise ValueError(
                    "DurableMaintainer needs a log directory path= or an "
                    "already-open wal="
                )
            wal = WriteAheadLog(
                path, sync_every=sync_every, segment_bytes=segment_bytes, fs=fs
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1 commit (or None)")
        # Durable attributes must exist before super().__init__: it
        # subscribes to the state and starts the worker, after which
        # on_commit may run.
        self.wal = wal
        self.scheduler = CommitScheduler(wal, policy=fault_policy)
        self.checkpoint_every = checkpoint_every
        self.recovery_report: Optional[RecoveryReport] = None
        self._commits_since_checkpoint = 0
        super().__init__(state, catalog, **async_kwargs)
        state.attach_commit_scheduler(self.scheduler)

    # -- commit path (writer threads, serialized by the store) -----------------

    def on_commit(self) -> None:
        """WAL-first commit: schedule the epoch frame, then enqueue it."""
        if not self._epoch_deltas and not self._epoch_schema_changed:
            super().on_commit()
            return
        record = EpochRecord(
            sequence=self.state.commit_sequence,
            generation=self.state.generation,
            deltas=tuple(self._epoch_deltas),
            schema_changed=self._epoch_schema_changed,
        )
        # The scheduler retries transient faults, degrades on persistent
        # ones and never raises OSError itself; a failed commit surfaces
        # through the ticket after the bookkeeping below.  Simulated
        # crashes from the fault harness are BaseException subclasses and
        # propagate immediately.
        ticket = self.scheduler.append(record)
        enqueue_error: Optional[BaseException] = None
        try:
            super().on_commit()
        except RuntimeError as error:
            # A stopped/crashed worker: the epoch is recorded for replay
            # and -- unlike the base tier -- already durable.  Checkpoint
            # bookkeeping below must still run so the log stays bounded.
            enqueue_error = error
        self._commits_since_checkpoint += 1
        if (
            ticket.error is None
            and self.checkpoint_every
            and self._commits_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        if ticket.error is not None:
            raise ticket.error
        if enqueue_error is not None:
            raise enqueue_error

    def heal(self) -> bool:
        """Probe the log and leave read-only degraded mode on success."""
        return self.scheduler.heal()

    def checkpoint(self) -> CheckpointPayload:
        """Durably checkpoint the current state; prune covered epochs.

        Runs on a writer thread (never mid-batch: commits fire after the
        outermost batch exits), so the snapshot is a consistent cut
        covering every epoch up to ``_sequence``.  The WAL is flushed
        first through the scheduler's retry policy (a checkpoint never
        claims coverage beyond the durable log) and the whole write runs
        under the scheduler's WAL fence, so concurrent group-commit
        flushes cannot interleave.  A failed checkpoint *write* raises
        :class:`WalError` but does not degrade the store: the commits it
        covered stay durable in the log, and the previous checkpoint (the
        atomic-rename discipline never replaces it with a torn one)
        remains the recovery basis.
        """
        snapshot = self.state.snapshot()
        with self._lock:
            sequence = self._sequence
        payload = CheckpointPayload(
            sequence=sequence,
            snapshot=snapshot,
            catalog=catalog_identity(self.catalog),
        )
        self.scheduler.flush()
        try:
            with self.scheduler.exclusive():
                self.wal.write_checkpoint(payload)
        except OSError as error:
            raise WalError(
                "checkpoint write failed; the previous checkpoint (if any) "
                "remains the recovery basis and the log itself is intact"
            ) from error
        self._commits_since_checkpoint = 0
        self.truncate_covered_epochs(sequence)
        return payload

    # -- lifecycle --------------------------------------------------------------

    def kill(self) -> None:
        """Stop the worker and release WAL file handles (no implicit fsync)."""
        super().kill()
        self.state.detach_commit_scheduler(self.scheduler)
        try:
            with self.scheduler.exclusive():
                self.wal.close()
        except OSError:  # pragma: no cover - handle-close race on fault fs
            pass

    # -- recovery ----------------------------------------------------------------

    def recover(self) -> Optional[int]:
        """In-place recovery for the durable tier: regenerate every extent.

        Checkpoints prune the in-memory epoch log, so the base tier's
        log-replay recovery no longer sees every unflushed delta here.
        The live state, however, already reflects *all* committed epochs
        -- so the durable tier recovers by re-deriving every extent from
        the current snapshot and advancing the serving cut to it.
        Requires a stopped worker (:meth:`kill`); for cross-process
        recovery use :meth:`open`.
        """
        with self._lock:
            if not self._stopped:
                raise RuntimeError(
                    "recover() requires a stopped maintainer (kill() first)"
                )
            records = len(self._log)
            sequence = self._sequence
        snapshot = self.state.snapshot()
        self.catalog.regenerate_extents(snapshot)
        with self._publish:
            self._serving = snapshot
        with self._lock:
            self._flushed_sequence = sequence
            del self._log[:]
        self.statistics.replayed_epochs += records
        return snapshot.generation

    @classmethod
    def open(
        cls,
        path: str,
        schema=None,
        catalog: Optional[ViewCatalog] = None,
        *,
        sync_every: Optional[int] = 1,
        checkpoint_every: Optional[int] = 32,
        segment_bytes: int = 1 << 20,
        fs=None,
        strict_catalog: bool = True,
        fault_policy: Optional[FaultPolicy] = None,
        **async_kwargs,
    ) -> "DurableMaintainer":
        """Recover a maintainer (state + extents) from a log directory.

        Loads the newest valid checkpoint (corrupt ones are skipped --
        recovery degrades, never crashes), rebuilds the state via
        :meth:`DatabaseState.from_snapshot`, replays the epoch tail
        through :meth:`DatabaseState.apply_delta` -- one batch per epoch,
        before any listener attaches -- regenerates every view extent
        against the recovered snapshot, truncates the torn WAL tail and
        returns a running maintainer whose sequence numbering continues
        the recovered log.  ``schema`` overrides the checkpoint's pinned
        schema (required when the tail contains ``schema_changed``
        epochs, whose schema swap the delta log does not carry); when
        ``None`` the checkpoint's schema (or the empty schema at genesis)
        is used.  ``strict_catalog`` requires the supplied catalog's
        identity (names + normalized concepts) to match the checkpoint's;
        the :attr:`recovery_report` says exactly what was recovered.
        """
        if catalog is None:
            raise ValueError("open() needs the ViewCatalog to regenerate extents")
        wal = WriteAheadLog(
            path, sync_every=sync_every, segment_bytes=segment_bytes, fs=fs
        )
        found = wal.recover()
        if found.checkpoint is not None:
            if strict_catalog:
                _require_catalog_identity(found.checkpoint.catalog, catalog)
            base = found.checkpoint.snapshot
            state = DatabaseState.from_snapshot(
                base, schema=schema if schema is not None else base.schema
            )
            checkpoint_sequence = found.checkpoint.sequence
        else:
            if schema is None:
                from ..concepts.schema import Schema

                schema = Schema.empty()
            state = DatabaseState(schema)
            checkpoint_sequence = 0
        for record in found.epochs:
            with state.batch():
                for delta in record.deltas:
                    state.apply_delta(delta)
        snapshot = state.snapshot()
        catalog.regenerate_extents(snapshot)
        wal.reset_to(found)
        # The from_snapshot + replay path bumped commit_sequence arbitrarily;
        # re-anchor it so new commits continue the recovered log's numbering.
        state.reset_commit_sequence(found.last_sequence)
        maintainer = cls(
            state,
            catalog,
            wal=wal,
            checkpoint_every=checkpoint_every,
            fault_policy=fault_policy,
            **async_kwargs,
        )
        with maintainer._lock:
            maintainer._sequence = found.last_sequence
            maintainer._flushed_sequence = found.last_sequence
        maintainer.recovery_report = RecoveryReport(
            checkpoint_sequence=checkpoint_sequence,
            replayed_epochs=len(found.epochs),
            recovered_sequence=found.last_sequence,
            dropped_bytes=found.dropped_bytes,
            dropped_records=found.dropped_records,
            corrupt_checkpoints=found.corrupt_checkpoints,
            generation=snapshot.generation,
        )
        return maintainer
