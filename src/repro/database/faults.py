"""Shared fault-handling toolkit: retry policies, breakers, typed statuses.

PR 7 grew a bounded-retry :class:`FaultPolicy` inside the commit pipeline
for transient *disk* faults; the serving fabric needs the identical
discipline for *network* faults (dropped sockets, refused dials, torn
frames).  This module is the shared home of both:

* :class:`FaultPolicy` -- bounded retries with exponential backoff, an
  injectable ``sleep`` (tests pay no wall-clock), an injectable
  ``retryable`` predicate (disk faults retry on
  :func:`~repro.database.wal.is_retryable_io_error`, network faults on
  :func:`is_retryable_net_error`) and optional **jitter** so a fleet of
  reconnecting clients does not thundering-herd a recovering server.
  ``repro.database.commit`` re-exports it unchanged.
* :class:`CircuitBreaker` -- consecutive-failure trip wire with a
  cooldown-gated half-open probe, so a client facing a dead server fails
  *fast* (no per-call dial timeout) yet re-probes automatically: the
  self-healing half of graceful degradation.
* :class:`StalenessError` -- typed failure of a freshness contract (a
  replica that cannot catch up within its polling budget), carrying the
  observed ``lag`` and the violated ``bound``.
* :class:`DegradedServing` -- the typed *status* a self-healing component
  reports while serving through a fault (a replica pinned to its last
  applied generation behind a partition; a cache client running local
  completions).  It is deliberately not an exception: degraded serving
  is an answer, not an error.

The split of roles: the **policy** bounds how hard one operation tries,
the **breaker** bounds how often a degraded component re-tries at all,
and the typed status/error make the degradation observable instead of
silent.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .wal import is_retryable_io_error

__all__ = [
    "CircuitBreaker",
    "DegradedServing",
    "FaultPolicy",
    "StalenessError",
    "is_retryable_net_error",
    "network_fault_policy",
]


def is_retryable_net_error(error: BaseException) -> bool:
    """Whether a network fault is worth a reconnect-and-retry.

    Every :class:`OSError` on a socket is transient from the client's
    point of view -- refused dials, resets, timeouts, broken pipes all
    mean "the server is not answering *right now*" -- so unlike the
    disk-side :func:`~repro.database.wal.is_retryable_io_error` (which
    whitelists errnos), the network predicate retries any ``OSError``.
    Protocol-level errors (a server *replying* ``ERROR``) are not
    ``OSError`` and are never retried.
    """
    return isinstance(error, OSError)


@dataclass(frozen=True)
class FaultPolicy:
    """Bounded retry with exponential backoff for transient I/O faults.

    ``max_retries`` bounds the re-attempts *per operation* (an append, a
    sync, a socket exchange); ``backoff`` is the first pause and doubles
    per attempt up to ``max_backoff``.  Only errors the ``retryable``
    predicate accepts are retried at all (the default is the WAL's
    errno whitelist; network clients pass
    :func:`is_retryable_net_error`); anything else -- or a retryable
    error that outlives the budget -- is treated as persistent.
    ``jitter`` spreads each pause uniformly over
    ``[1 - jitter, 1 + jitter]`` times its nominal value (``rng`` is
    injectable for determinism), so simultaneously-disconnected clients
    do not reconnect in lockstep.  ``sleep`` is injectable so tests pay
    no wall-clock for the backoff.
    """

    max_retries: int = 4
    backoff: float = 0.002
    max_backoff: float = 0.05
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    retryable: Callable[[BaseException], bool] = field(
        default=is_retryable_io_error, repr=False
    )
    jitter: float = 0.0
    rng: Callable[[], float] = field(default=None, repr=False)  # type: ignore[assignment]

    def should_retry(self, attempt: int, error: BaseException) -> bool:
        """Whether attempt number ``attempt`` (1-based) warrants another try."""
        return attempt <= self.max_retries and self.retryable(error)

    def delay(self, attempt: int) -> float:
        """The (jittered) pause before retry number ``attempt`` (1-based)."""
        nominal = min(self.backoff * (2 ** (attempt - 1)), self.max_backoff)
        if not self.jitter:
            return nominal
        if self.rng is not None:
            sample = self.rng()
        else:  # lazy import keeps the frozen default picklable
            import random

            sample = random.random()
        return nominal * (1.0 - self.jitter + 2.0 * self.jitter * sample)

    def pause(self, attempt: int) -> None:
        """Back off before retry number ``attempt`` (1-based)."""
        self.sleep(self.delay(attempt))


def network_fault_policy(
    *,
    max_retries: int = 2,
    backoff: float = 0.01,
    max_backoff: float = 0.2,
    jitter: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[Callable[[], float]] = None,
) -> FaultPolicy:
    """The default reconnect policy for serving-fabric clients.

    Fewer, slower, jittered retries compared to the disk-side default:
    a socket retry costs a fresh dial (milliseconds, not microseconds),
    and a recovering server should see its clients trickle back rather
    than stampede.
    """
    return FaultPolicy(
        max_retries=max_retries,
        backoff=backoff,
        max_backoff=max_backoff,
        sleep=sleep,
        retryable=is_retryable_net_error,
        jitter=jitter,
        rng=rng,
    )


class CircuitBreaker:
    """A consecutive-failure trip wire with cooldown-gated half-open probes.

    *Closed* (healthy): every call is allowed.  After
    ``failure_threshold`` consecutive recorded failures the breaker
    *opens*: :meth:`allow` answers ``False`` -- callers degrade
    immediately instead of paying a doomed dial -- until ``cooldown``
    seconds pass, whereupon one half-open probe window opens: the next
    :meth:`allow` returns ``True`` once, a success closes the breaker,
    another failure re-opens it (and re-arms the cooldown).  ``clock``
    is injectable so tests drive the cooldown without sleeping.

    Thread-safe; one breaker is shared by every connection of one
    client, so the trip/probe cadence is per *server*, not per socket.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 1,
        cooldown: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (probe in flight)."""
        with self._lock:
            if self._opened_at is None:
                return "closed"
            return "half-open" if self._probing else "open"

    def allow(self) -> bool:
        """Whether a caller may attempt the guarded operation now."""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False
            if self.clock() - self._opened_at >= self.cooldown:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """Close the breaker: the guarded operation worked."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        """Count one failure; trip (or re-trip) past the threshold.

        While the breaker is already open (and no probe is in flight) a
        recorded failure does **not** re-arm the cooldown: fast-fails
        from callers retrying more often than the cooldown would
        otherwise keep pushing the half-open window away forever -- a
        livelock where the breaker never probes a recovered server.
        Only tripping from closed and a failed half-open probe restart
        the clock.
        """
        with self._lock:
            self._failures += 1
            if self._opened_at is None:
                if self._failures < self.failure_threshold:
                    return
                self.trips += 1
                self._opened_at = self.clock()
                self._probing = False
            elif self._probing:
                # The half-open probe itself failed: re-arm the cooldown.
                self._opened_at = self.clock()
                self._probing = False

    def reset(self) -> None:
        """Force-close (an explicit operator ``reconnect()``)."""
        self.record_success()


class StalenessError(RuntimeError):
    """A freshness contract could not be met within the polling budget.

    Raised by :meth:`~repro.database.replica.SnapshotReplica.ensure_fresh`
    when the primary *is* reachable but keeps outrunning the replica's
    apply rate -- an operational error distinct from both silent
    staleness and connection loss.  ``lag`` is the last observed lag,
    ``bound`` the violated contract.
    """

    def __init__(self, message: str, *, lag: int, bound: int) -> None:
        super().__init__(message)
        self.lag = lag
        self.bound = bound


@dataclass(frozen=True)
class DegradedServing:
    """The typed status of a component serving *through* a fault.

    ``reason`` is the human-readable fault description; ``since_sequence``
    /``since_generation`` pin what the component is still serving;
    ``last_known_lag`` is the staleness it could last verify (``None``
    when the primary has been unreachable since the last successful
    exchange); ``bound`` is the declared staleness contract the pinned
    answers were within when the fault hit.
    """

    reason: str
    since_sequence: int = 0
    since_generation: int = 0
    last_known_lag: Optional[int] = None
    bound: int = 0
