"""Exception hierarchy of the ``repro`` library.

All library-specific exceptions derive from :class:`ReproError`, so callers
can distinguish library failures from programming errors with a single
``except`` clause.  Sub-packages define more specific errors (parser errors,
schema errors, ...) that are re-exported here for convenience.
"""

from __future__ import annotations

__all__ = ["ReproError", "UnsupportedQueryError", "NonStructuralViewError"]


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class UnsupportedQueryError(ReproError):
    """Raised when a query uses constructs outside the supported language.

    The structural query language ``QL`` was deliberately designed to stay
    polynomial (Section 4.4 of the paper); constructs such as universal
    quantification, disjunction or negation are rejected with this error
    rather than silently ignored.
    """


class NonStructuralViewError(ReproError):
    """Raised when a query with a non-structural part is registered as a view.

    The paper requires views to be *entirely* captured by their structural
    part (Section 2.2); otherwise using the view extension as a filter would
    be unsound (Proposition 3.1).
    """
