"""The public facade: :class:`SubsumptionChecker`.

The checker bundles a schema with the completion engine configuration and
offers the operations a query optimizer needs:

* :meth:`SubsumptionChecker.subsumes` -- the boolean test ``C ⊑_Σ D``,
* :meth:`SubsumptionChecker.explain` -- the full result with trace and
  countermodel,
* :meth:`SubsumptionChecker.is_satisfiable` -- Σ-satisfiability of a concept
  (``C`` is unsatisfiable iff its completion contains a clash),
* :meth:`SubsumptionChecker.equivalent` -- mutual subsumption,
* :meth:`SubsumptionChecker.classify` -- insert a set of named concepts into
  their subsumption hierarchy (the "virtual class integration" of related
  OODB view mechanisms discussed in Section 5).

Three layers of memoization keep repeated checks cheap when the optimizer
probes the same query against many views that share sub-expressions:

* normalized concepts are interned and cached process-wide
  (:mod:`repro.concepts.intern` / :func:`repro.concepts.normalize.normalize_concept`),
* decisions are cached per normalized ``(query, view)`` pair -- both in a
  per-checker table and in a process-wide cache shared by every checker over
  a structurally equal schema (``shared_cache=False`` opts out),
* per-concept *signatures* (primitive concept / attribute / constant sets)
  and Σ-satisfiability verdicts are cached per normalized concept.

All of these tables are keyed on interned concept ids, so a cache hit costs
an attribute read and a small-int hash rather than a structural traversal of
the AST.

The signature supports a sound **necessary-condition filter**: in ``QL``
every occurrence of a symbol is positive and required (there is no negation
or value restriction in the query language), so whenever the view ``D``
mentions a primitive concept or attribute that occurs neither in the query
``C`` nor in the schema ``Σ`` -- or a constant that does not occur in ``C``
(``SL`` schemas cannot mention constants) -- the canonical model of a
satisfiable ``C`` interprets that symbol by the empty set (resp. a fresh
isolated object), so ``C ⊑_Σ D`` can only hold if ``C`` is Σ-unsatisfiable.
:meth:`subsumes` therefore answers such checks with one (memoized)
satisfiability probe of ``C`` instead of a full completion per view.

Two further **decision shortcuts**, born in the batch layer
(:mod:`repro.optimizer.parallel`) and promoted here after the adversarial
fuzz in ``tests/optimizer/test_batch_filters.py`` proved them sound on
every corner (empty schema, deep ``isA`` chains, necessity-gated inverse
vocabularies), now run inside :meth:`subsumes` itself:

1. **Told subsumption.**  Normalized concepts are canonical sorted
   conjunctions, so ``conjunct_ids(D) ⊆ conjunct_ids(C)`` (compared as
   interned ids) proves ``C ⊑_Σ D`` for *every* schema: ``QL`` has no
   negation, hence dropping conjuncts only generalizes.
2. **Root-membership rejection.**  One facts-only completion per query
   (the memoized :class:`ConceptProfile`) decides all primitive subsumers
   at once: ``C ⊑_Σ A`` with primitive ``A`` holds iff ``A`` was
   established at the root of ``C``'s completion, and ``C ⊑ ∃(R:...)p``
   (or an agreement headed by ``R``) needs an ``R``-step at the root,
   which only an existing edge or rule S5 (gated on a schema necessity
   axiom for ``R``) can provide.  A satisfiable query failing either
   necessary condition is rejected without a completion.

Both shortcuts replace completion runs by cheaper reasoning without ever
changing an answer; ``shortcuts=False`` opts out (the fuzz suite pins the
two modes decision-equal).
"""

from __future__ import annotations

import itertools
import weakref
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from dataclasses import dataclass

from ..calculus.constraints import (
    AttributeConstraint,
    MembershipConstraint,
    PathConstraint,
)
from ..calculus.subsume import SubsumptionResult, decide_subsumption
from ..concepts import intern
from ..concepts.intern import concept_id
from ..concepts.normalize import normalize_concept
from ..concepts.schema import Schema
from ..concepts.syntax import Concept, ExistsPath, Path, PathAgreement, Primitive
from ..concepts.visitors import (
    conjuncts,
    constants,
    primitive_attributes,
    primitive_concepts,
)

__all__ = [
    "ConceptProfile",
    "SubsumptionChecker",
    "clear_shared_decision_cache",
    "concept_signature",
    "conjunct_ids",
    "necessary_attribute_names",
    "profile_concept",
    "profile_rejects",
]

#: (primitive concept names, primitive attribute names, constants) of a concept.
Signature = Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]

#: Interned schema identities: structurally equal schemas share one token, so
#: the shared decision cache below can key on a small int instead of hashing
#: the axiom set on every lookup.  The mapping is weak -- a schema no checker
#: holds anymore is released -- and tokens are drawn from a monotonic counter
#: that is never reused, so cache entries keyed on a dead token can only
#: become unreachable, never alias a new schema.
_SCHEMA_TOKENS: "weakref.WeakKeyDictionary[Schema, int]" = weakref.WeakKeyDictionary()
_schema_token_counter = itertools.count(1)

#: Cross-checker decision cache keyed on
#: ``(schema token, use_repair_rule, query id, view id)``.  Because interned
#: concept ids are process-unique and never reused, entries stay valid for the
#: lifetime of the process; every checker instance with ``shared_cache=True``
#: both consults and feeds it, so e.g. a view lattice rebuilt by a second
#: optimizer over the same schema re-derives no decision.
_SHARED_DECISIONS: Dict[Tuple[int, bool, int, int], bool] = {}


def _schema_token(schema: Schema) -> int:
    token = _SCHEMA_TOKENS.get(schema)
    if token is None:
        token = next(_schema_token_counter)
        _SCHEMA_TOKENS[schema] = token
    return token


def clear_shared_decision_cache() -> None:
    """Drop the process-wide decision cache (benchmarks use this to measure cold runs)."""
    _SHARED_DECISIONS.clear()


def concept_signature(concept: Concept) -> Signature:
    """The symbol signature of a concept (used by the necessary-condition filter)."""
    return (
        primitive_concepts(concept),
        primitive_attributes(concept),
        constants(concept),
    )


# ---------------------------------------------------------------------------
# Decision shortcuts (promoted from the batch layer, see the module docstring)
# ---------------------------------------------------------------------------

#: Fresh primitive used for the facts-only profiling completion.  A goal
#: ``x : P`` with primitive ``P`` fires no goal or schema rule, so the
#: completed facts equal the completion of the query alone.
_PROBE = Primitive("__repro_batch_profile_probe__")


#: Process-wide memo for :func:`conjunct_ids`, keyed by interned concept id
#: (ids are never reused, so entries can never alias).  Cleared together
#: with the intern tables, mirroring the normalize memo.
_CONJUNCT_IDS: Dict[int, FrozenSet[int]] = {}


def conjunct_ids(concept: Concept) -> FrozenSet[int]:
    """The interned ids of the top-level conjuncts of the normalized concept.

    ``conjunct_ids(D) <= conjunct_ids(C)`` is the *told subsumption* test:
    it proves ``C ⊑_Σ D`` for every schema Σ (see the module docstring).
    Memoized process-wide on the interned id, so repeated seeding passes
    over the same catalog cost dictionary lookups, not AST walks.
    """
    normalized = normalize_concept(concept)
    key = concept_id(normalized)
    cached = _CONJUNCT_IDS.get(key)
    if cached is None:
        cached = frozenset(concept_id(part) for part in conjuncts(normalized))
        _CONJUNCT_IDS[key] = cached
    return cached


intern.register_dependent_cache(_CONJUNCT_IDS.clear)


@dataclass(frozen=True)
class ConceptProfile:
    """What one facts-only completion reveals about a query concept.

    ``root_primitives`` are the primitive concepts established at the root
    (equivalently: the set of *all* primitive subsumers of the concept);
    ``root_heads`` are the ``(attribute name, inverted)`` heads of steps
    available at the root -- outgoing edges, incoming edges (seen as
    inverted heads) and heads of path memberships recorded at the root.
    An unsatisfiable concept is subsumed by everything; its profile never
    rejects.
    """

    satisfiable: bool
    root_primitives: FrozenSet[str]
    root_heads: FrozenSet[Tuple[str, bool]]


def _membership_heads(concept: Concept) -> List[Tuple[str, bool]]:
    heads: List[Tuple[str, bool]] = []
    for part in conjuncts(concept):
        path: Optional[Path] = None
        if isinstance(part, ExistsPath):
            path = part.path
        elif isinstance(part, PathAgreement):
            path = part.left
        if path is not None and not path.is_empty:
            attribute = path.steps[0].attribute
            heads.append((attribute.name, attribute.inverted))
    return heads


def profile_concept(concept: Concept, checker) -> ConceptProfile:
    """Profile ``concept`` with one completion under ``checker``'s regime.

    ``checker`` only needs ``schema`` / ``use_repair_rule`` / ``naive``
    attributes, so both :class:`SubsumptionChecker` and the batch layer's
    ``BatchCheckerView`` qualify.
    """
    normalized = normalize_concept(concept)
    result = decide_subsumption(
        normalized,
        _PROBE,
        checker.schema,
        use_repair_rule=checker.use_repair_rule,
        keep_trace=False,
        naive=checker.naive,
    )
    root = result.root_goal_subject
    primitives = set()
    heads = set()
    for fact in result.completion.facts:
        if isinstance(fact, MembershipConstraint):
            if fact.subject == root:
                if isinstance(fact.concept, Primitive):
                    primitives.add(fact.concept.name)
                else:
                    heads.update(_membership_heads(fact.concept))
        elif isinstance(fact, AttributeConstraint):
            if fact.subject == root:
                heads.add((fact.attribute.name, fact.attribute.inverted))
            if fact.filler == root:
                heads.add((fact.attribute.name, not fact.attribute.inverted))
        elif isinstance(fact, PathConstraint):
            if fact.subject == root and len(fact.path) >= 1:
                attribute = fact.path[0].attribute
                heads.add((attribute.name, attribute.inverted))
    return ConceptProfile(
        satisfiable=not result.clashes,
        root_primitives=frozenset(primitives),
        root_heads=frozenset(heads),
    )


def necessary_attribute_names(schema: Schema) -> FrozenSet[str]:
    """Attributes armed by a necessity axiom somewhere in ``Σ`` (the S5 gate)."""
    return frozenset(
        attribute
        for class_name in schema.concept_names()
        for attribute in schema.necessary_attributes(class_name)
    )


def _head_blocked(
    profile: ConceptProfile, path: Path, necessary_names: FrozenSet[str]
) -> bool:
    if path.is_empty:
        return False
    attribute = path.steps[0].attribute
    if (attribute.name, attribute.inverted) in profile.root_heads:
        return False
    # Rule S5 can still materialize a step for an attribute with a
    # necessity axiom in Σ; stay conservative for those.
    if attribute.name in necessary_names:
        return False
    return True


def profile_rejects(
    profile: ConceptProfile, view: Concept, necessary_names: FrozenSet[str]
) -> bool:
    """``True`` only if ``profile`` *proves* the query is not subsumed by ``view``.

    ``view`` must be normalized; ``necessary_names`` is
    :func:`necessary_attribute_names` of the schema the profile was
    computed under.  Sound by the necessary-condition argument in the
    module docstring; never fires for unsatisfiable queries (subsumed by
    everything).
    """
    if not profile.satisfiable:
        return False
    for part in conjuncts(view):
        if isinstance(part, Primitive):
            if part.name not in profile.root_primitives:
                return True
        elif isinstance(part, ExistsPath):
            if _head_blocked(profile, part.path, necessary_names):
                return True
        elif isinstance(part, PathAgreement):
            if _head_blocked(profile, part.left, necessary_names):
                return True
    return False


class SubsumptionChecker:
    """Decides Σ-subsumption between ``QL`` concepts for a fixed schema ``Σ``."""

    def __init__(
        self,
        schema: Optional[Schema] = None,
        *,
        use_repair_rule: bool = True,
        cache: bool = True,
        naive: bool = False,
        shared_cache: bool = True,
        shortcuts: bool = True,
    ) -> None:
        self.schema = schema if schema is not None else Schema.empty()
        self.use_repair_rule = use_repair_rule
        self.naive = naive
        self._cache_enabled = cache
        self._shared_cache_enabled = shared_cache
        self._shortcuts_enabled = shortcuts
        self._schema_token = _schema_token(self.schema)
        # All memo dictionaries are keyed on interned concept ids
        # (:mod:`repro.concepts.intern`): one attribute read plus a small-int
        # hash per lookup, instead of structurally hashing a deep AST.
        self._cache: Dict[Tuple[int, int], bool] = {}
        self._signatures: Dict[int, Signature] = {}
        self._satisfiable: Dict[int, bool] = {}
        self._profiles: Dict[int, ConceptProfile] = {}
        self._schema_concepts = self.schema.concept_names()
        self._schema_attributes = self.schema.attribute_names()
        self._necessary_names = necessary_attribute_names(self.schema)
        self._checks = 0
        self._cache_hits = 0
        self._shared_cache_hits = 0
        self._signature_rejections = 0
        self._told_shortcuts = 0
        self._profile_rejections = 0
        self._profiles_computed = 0

    # -- memoized building blocks ----------------------------------------------

    def normalized(self, concept: Concept) -> Concept:
        """The canonical normalized form of a concept (interned + memoized)."""
        return normalize_concept(concept)

    def signature(self, concept: Concept) -> Signature:
        """The signature of the normalized concept (memoized)."""
        normalized = normalize_concept(concept)
        key = concept_id(normalized)
        cached = self._signatures.get(key)
        if cached is None:
            cached = concept_signature(normalized)
            self._signatures[key] = cached
        return cached

    def signature_excludes(self, query: Concept, view: Concept) -> bool:
        """``True`` iff the signatures alone prove ``query ⊑_Σ view`` needs query unsat.

        The necessary condition (see the module docstring): a subsumption
        with a satisfiable query requires every primitive concept and
        attribute of the view to occur in the query or the schema, and every
        constant of the view to occur in the query.
        """
        query_concepts, query_attributes, query_constants = self.signature(query)
        view_concepts, view_attributes, view_constants = self.signature(view)
        return not (
            view_concepts <= query_concepts | self._schema_concepts
            and view_attributes <= query_attributes | self._schema_attributes
            and view_constants <= query_constants
        )

    def quick_reject(self, query: Concept, view: Concept) -> bool:
        """``True`` iff non-subsumption is provable without running a completion.

        Callers (e.g. :class:`repro.optimizer.optimizer.SemanticQueryOptimizer`)
        use this to skip whole subsumption calls; a satisfiable query whose
        view fails the signature condition cannot be subsumed.  The
        satisfiability probe itself is one completion, but it is memoized per
        query, so scanning a catalog of ``n`` views costs at most one
        completion instead of ``n``.
        """
        return self.signature_excludes(query, view) and self._query_satisfiable(query)

    def _query_satisfiable(self, concept: Concept) -> bool:
        normalized = normalize_concept(concept)
        key = concept_id(normalized)
        cached = self._satisfiable.get(key)
        if cached is None:
            cached = self.is_satisfiable(normalized)
            self._satisfiable[key] = cached
        return cached

    def profile(self, concept: Concept) -> ConceptProfile:
        """The memoized :class:`ConceptProfile` of the normalized concept.

        One facts-only completion per distinct query concept, amortized
        over every view that query is checked against.
        """
        normalized = normalize_concept(concept)
        key = concept_id(normalized)
        cached = self._profiles.get(key)
        if cached is None:
            cached = profile_concept(normalized, self)
            self._profiles[key] = cached
            self._profiles_computed += 1
        return cached

    # -- decision-cache plumbing (used by the batch/parallel layer) -------------

    def cached_decision(self, query_id: int, view_id: int) -> Optional[bool]:
        """The memoized decision for a pair of interned concept ids, if any.

        Consults the per-checker table first, then the process-wide shared
        cache; returns ``None`` when the pair has never been decided.  Purely
        a read -- no completion is ever run.
        """
        if self._cache_enabled:
            decision = self._cache.get((query_id, view_id))
            if decision is not None:
                return decision
        if self._shared_cache_enabled:
            return _SHARED_DECISIONS.get(
                (self._schema_token, self.use_repair_rule, query_id, view_id)
            )
        return None

    def record_decision(self, query_id: int, view_id: int, decision: bool) -> None:
        """Record an externally derived decision for a pair of interned ids.

        Callers (the batched classifier and the sharded matcher) must only
        record decisions that this checker would itself return -- either
        replayed worker results or decisions entailed by soundness arguments
        (told subsumption, the batch rejection filters).  Entries feed both
        the per-checker table and, when enabled, the shared process-wide
        cache, exactly like a decision computed by :meth:`subsumes`.
        """
        if self._cache_enabled:
            self._cache[(query_id, view_id)] = decision
        if self._shared_cache_enabled:
            _SHARED_DECISIONS[
                (self._schema_token, self.use_repair_rule, query_id, view_id)
            ] = decision

    def absorb_decisions(self, decisions: Mapping[Tuple[int, int], bool]) -> None:
        """Merge a worker's decision-cache delta (see :meth:`record_decision`)."""
        for (query_id, view_id), decision in decisions.items():
            self.record_decision(query_id, view_id, decision)

    # -- basic decisions -------------------------------------------------------

    def subsumes(self, query: Concept, view: Concept) -> bool:
        """``True`` iff every instance of ``query`` is an instance of ``view`` in every Σ-state."""
        normalized_query = normalize_concept(query)
        normalized_view = normalize_concept(view)
        key = (concept_id(normalized_query), concept_id(normalized_view))
        self._checks += 1
        if self._cache_enabled and key in self._cache:
            self._cache_hits += 1
            return self._cache[key]
        shared_key = (self._schema_token, self.use_repair_rule) + key
        if self._shared_cache_enabled and shared_key in _SHARED_DECISIONS:
            self._shared_cache_hits += 1
            decision = _SHARED_DECISIONS[shared_key]
            if self._cache_enabled:
                self._cache[key] = decision
            return decision
        if self._shortcuts_enabled and conjunct_ids(normalized_view) <= conjunct_ids(
            normalized_query
        ):
            # Told subsumption: dropping conjuncts only generalizes in QL.
            self._told_shortcuts += 1
            decision = True
        elif self.signature_excludes(normalized_query, normalized_view):
            # Only an unsatisfiable query can be subsumed by a view whose
            # signature exceeds query + schema; one memoized probe decides.
            self._signature_rejections += 1
            decision = not self._query_satisfiable(normalized_query)
        elif self._shortcuts_enabled and profile_rejects(
            self.profile(normalized_query), normalized_view, self._necessary_names
        ):
            # A satisfiable query missing a root primitive / head the view
            # requires cannot be subsumed by it (one memoized profile).
            self._profile_rejections += 1
            decision = False
        else:
            decision = decide_subsumption(
                normalized_query,
                normalized_view,
                self.schema,
                use_repair_rule=self.use_repair_rule,
                keep_trace=False,
                naive=self.naive,
            ).subsumed
        if self._cache_enabled:
            self._cache[key] = decision
        if self._shared_cache_enabled:
            _SHARED_DECISIONS[shared_key] = decision
        return decision

    def explain(self, query: Concept, view: Concept) -> SubsumptionResult:
        """The full :class:`SubsumptionResult` (trace, statistics, countermodel)."""
        return decide_subsumption(
            query,
            view,
            self.schema,
            use_repair_rule=self.use_repair_rule,
            keep_trace=True,
            naive=self.naive,
        )

    def is_satisfiable(self, concept: Concept) -> bool:
        """Σ-satisfiability: ``False`` iff the completion of ``concept`` contains a clash.

        In ``QL`` with ``SL`` schemas the only sources of unsatisfiability are
        the Unique Name Assumption clashes of Section 4.2, so a concept is
        unsatisfiable exactly when it is subsumed by an arbitrary fresh
        primitive concept via a clash.
        """
        probe = Primitive("__repro_unsatisfiability_probe__")
        result = decide_subsumption(
            concept,
            probe,
            self.schema,
            use_repair_rule=self.use_repair_rule,
            keep_trace=False,
            naive=self.naive,
        )
        return not result.clashes

    def equivalent(self, left: Concept, right: Concept) -> bool:
        """Mutual Σ-subsumption."""
        return self.subsumes(left, right) and self.subsumes(right, left)

    # -- classification ---------------------------------------------------------

    def classify(self, concepts: Mapping[str, Concept]) -> Dict[str, List[str]]:
        """Compute the subsumption hierarchy among named concepts.

        Returns, for every name, the list of *direct* subsumers (most specific
        named concepts that strictly subsume it).  This mirrors how OODB view
        mechanisms integrate virtual classes into the class hierarchy
        (Section 5 of the paper).
        """
        names = sorted(concepts)
        subsumers: Dict[str, set] = {name: set() for name in names}
        for name in names:
            for other in names:
                if name == other:
                    continue
                if self.subsumes(concepts[name], concepts[other]):
                    subsumers[name].add(other)
        direct: Dict[str, List[str]] = {}
        for name in names:
            candidates = subsumers[name]
            redundant = set()
            for candidate in candidates:
                # candidate is redundant if some other subsumer is below it.
                for other in candidates:
                    if other != candidate and candidate in subsumers[other]:
                        # other ⊑ candidate, so candidate is not a *direct* parent
                        # unless they are mutually subsuming (equivalent).
                        if other not in subsumers.get(candidate, set()):
                            redundant.add(candidate)
            direct[name] = sorted(candidates - redundant)
        return direct

    # -- statistics ----------------------------------------------------------------

    @property
    def statistics(self) -> Dict[str, int]:
        """Counters: checks asked, cache hits, signature-filter short-circuits."""
        return {
            "checks": self._checks,
            "cache_hits": self._cache_hits,
            "shared_cache_hits": self._shared_cache_hits,
            "cache_size": len(self._cache),
            "signature_rejections": self._signature_rejections,
            "told_shortcuts": self._told_shortcuts,
            "profile_rejections": self._profile_rejections,
            "profiles_computed": self._profiles_computed,
        }

    def clear_cache(self) -> None:
        """Drop this checker's memoized decisions (e.g. after changing the schema).

        The process-wide shared decision cache is left intact (its entries
        are keyed on schema identity and stay valid); use
        :func:`clear_shared_decision_cache` to drop that one too.
        """
        self._cache.clear()
        self._signatures.clear()
        self._satisfiable.clear()
        self._profiles.clear()
        self._schema_token = _schema_token(self.schema)
        self._schema_concepts = self.schema.concept_names()
        self._schema_attributes = self.schema.attribute_names()
        self._necessary_names = necessary_attribute_names(self.schema)
