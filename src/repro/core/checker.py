"""The public facade: :class:`SubsumptionChecker`.

The checker bundles a schema with the completion engine configuration and
offers the operations a query optimizer needs:

* :meth:`SubsumptionChecker.subsumes` -- the boolean test ``C ⊑_Σ D``,
* :meth:`SubsumptionChecker.explain` -- the full result with trace and
  countermodel,
* :meth:`SubsumptionChecker.is_satisfiable` -- Σ-satisfiability of a concept
  (``C`` is unsatisfiable iff its completion contains a clash),
* :meth:`SubsumptionChecker.equivalent` -- mutual subsumption,
* :meth:`SubsumptionChecker.classify` -- insert a set of named concepts into
  their subsumption hierarchy (the "virtual class integration" of related
  OODB view mechanisms discussed in Section 5).

Three layers of memoization keep repeated checks cheap when the optimizer
probes the same query against many views that share sub-expressions:

* normalized concepts are interned and cached process-wide
  (:mod:`repro.concepts.intern` / :func:`repro.concepts.normalize.normalize_concept`),
* decisions are cached per normalized ``(query, view)`` pair -- both in a
  per-checker table and in a process-wide cache shared by every checker over
  a structurally equal schema (``shared_cache=False`` opts out),
* per-concept *signatures* (primitive concept / attribute / constant sets)
  and Σ-satisfiability verdicts are cached per normalized concept.

All of these tables are keyed on interned concept ids, so a cache hit costs
an attribute read and a small-int hash rather than a structural traversal of
the AST.

The signature supports a sound **necessary-condition filter**: in ``QL``
every occurrence of a symbol is positive and required (there is no negation
or value restriction in the query language), so whenever the view ``D``
mentions a primitive concept or attribute that occurs neither in the query
``C`` nor in the schema ``Σ`` -- or a constant that does not occur in ``C``
(``SL`` schemas cannot mention constants) -- the canonical model of a
satisfiable ``C`` interprets that symbol by the empty set (resp. a fresh
isolated object), so ``C ⊑_Σ D`` can only hold if ``C`` is Σ-unsatisfiable.
:meth:`subsumes` therefore answers such checks with one (memoized)
satisfiability probe of ``C`` instead of a full completion per view.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..calculus.subsume import SubsumptionResult, decide_subsumption
from ..concepts.intern import concept_id
from ..concepts.normalize import normalize_concept
from ..concepts.schema import Schema
from ..concepts.syntax import Concept
from ..concepts.visitors import constants, primitive_attributes, primitive_concepts

__all__ = ["SubsumptionChecker", "concept_signature", "clear_shared_decision_cache"]

#: (primitive concept names, primitive attribute names, constants) of a concept.
Signature = Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]

#: Interned schema identities: structurally equal schemas share one token, so
#: the shared decision cache below can key on a small int instead of hashing
#: the axiom set on every lookup.  The mapping is weak -- a schema no checker
#: holds anymore is released -- and tokens are drawn from a monotonic counter
#: that is never reused, so cache entries keyed on a dead token can only
#: become unreachable, never alias a new schema.
_SCHEMA_TOKENS: "weakref.WeakKeyDictionary[Schema, int]" = weakref.WeakKeyDictionary()
_schema_token_counter = itertools.count(1)

#: Cross-checker decision cache keyed on
#: ``(schema token, use_repair_rule, query id, view id)``.  Because interned
#: concept ids are process-unique and never reused, entries stay valid for the
#: lifetime of the process; every checker instance with ``shared_cache=True``
#: both consults and feeds it, so e.g. a view lattice rebuilt by a second
#: optimizer over the same schema re-derives no decision.
_SHARED_DECISIONS: Dict[Tuple[int, bool, int, int], bool] = {}


def _schema_token(schema: Schema) -> int:
    token = _SCHEMA_TOKENS.get(schema)
    if token is None:
        token = next(_schema_token_counter)
        _SCHEMA_TOKENS[schema] = token
    return token


def clear_shared_decision_cache() -> None:
    """Drop the process-wide decision cache (benchmarks use this to measure cold runs)."""
    _SHARED_DECISIONS.clear()


def concept_signature(concept: Concept) -> Signature:
    """The symbol signature of a concept (used by the necessary-condition filter)."""
    return (
        primitive_concepts(concept),
        primitive_attributes(concept),
        constants(concept),
    )


class SubsumptionChecker:
    """Decides Σ-subsumption between ``QL`` concepts for a fixed schema ``Σ``."""

    def __init__(
        self,
        schema: Optional[Schema] = None,
        *,
        use_repair_rule: bool = True,
        cache: bool = True,
        naive: bool = False,
        shared_cache: bool = True,
    ) -> None:
        self.schema = schema if schema is not None else Schema.empty()
        self.use_repair_rule = use_repair_rule
        self.naive = naive
        self._cache_enabled = cache
        self._shared_cache_enabled = shared_cache
        self._schema_token = _schema_token(self.schema)
        # All memo dictionaries are keyed on interned concept ids
        # (:mod:`repro.concepts.intern`): one attribute read plus a small-int
        # hash per lookup, instead of structurally hashing a deep AST.
        self._cache: Dict[Tuple[int, int], bool] = {}
        self._signatures: Dict[int, Signature] = {}
        self._satisfiable: Dict[int, bool] = {}
        self._schema_concepts = self.schema.concept_names()
        self._schema_attributes = self.schema.attribute_names()
        self._checks = 0
        self._cache_hits = 0
        self._shared_cache_hits = 0
        self._signature_rejections = 0

    # -- memoized building blocks ----------------------------------------------

    def normalized(self, concept: Concept) -> Concept:
        """The canonical normalized form of a concept (interned + memoized)."""
        return normalize_concept(concept)

    def signature(self, concept: Concept) -> Signature:
        """The signature of the normalized concept (memoized)."""
        normalized = normalize_concept(concept)
        key = concept_id(normalized)
        cached = self._signatures.get(key)
        if cached is None:
            cached = concept_signature(normalized)
            self._signatures[key] = cached
        return cached

    def signature_excludes(self, query: Concept, view: Concept) -> bool:
        """``True`` iff the signatures alone prove ``query ⊑_Σ view`` needs query unsat.

        The necessary condition (see the module docstring): a subsumption
        with a satisfiable query requires every primitive concept and
        attribute of the view to occur in the query or the schema, and every
        constant of the view to occur in the query.
        """
        query_concepts, query_attributes, query_constants = self.signature(query)
        view_concepts, view_attributes, view_constants = self.signature(view)
        return not (
            view_concepts <= query_concepts | self._schema_concepts
            and view_attributes <= query_attributes | self._schema_attributes
            and view_constants <= query_constants
        )

    def quick_reject(self, query: Concept, view: Concept) -> bool:
        """``True`` iff non-subsumption is provable without running a completion.

        Callers (e.g. :class:`repro.optimizer.optimizer.SemanticQueryOptimizer`)
        use this to skip whole subsumption calls; a satisfiable query whose
        view fails the signature condition cannot be subsumed.  The
        satisfiability probe itself is one completion, but it is memoized per
        query, so scanning a catalog of ``n`` views costs at most one
        completion instead of ``n``.
        """
        return self.signature_excludes(query, view) and self._query_satisfiable(query)

    def _query_satisfiable(self, concept: Concept) -> bool:
        normalized = normalize_concept(concept)
        key = concept_id(normalized)
        cached = self._satisfiable.get(key)
        if cached is None:
            cached = self.is_satisfiable(normalized)
            self._satisfiable[key] = cached
        return cached

    # -- decision-cache plumbing (used by the batch/parallel layer) -------------

    def cached_decision(self, query_id: int, view_id: int) -> Optional[bool]:
        """The memoized decision for a pair of interned concept ids, if any.

        Consults the per-checker table first, then the process-wide shared
        cache; returns ``None`` when the pair has never been decided.  Purely
        a read -- no completion is ever run.
        """
        if self._cache_enabled:
            decision = self._cache.get((query_id, view_id))
            if decision is not None:
                return decision
        if self._shared_cache_enabled:
            return _SHARED_DECISIONS.get(
                (self._schema_token, self.use_repair_rule, query_id, view_id)
            )
        return None

    def record_decision(self, query_id: int, view_id: int, decision: bool) -> None:
        """Record an externally derived decision for a pair of interned ids.

        Callers (the batched classifier and the sharded matcher) must only
        record decisions that this checker would itself return -- either
        replayed worker results or decisions entailed by soundness arguments
        (told subsumption, the batch rejection filters).  Entries feed both
        the per-checker table and, when enabled, the shared process-wide
        cache, exactly like a decision computed by :meth:`subsumes`.
        """
        if self._cache_enabled:
            self._cache[(query_id, view_id)] = decision
        if self._shared_cache_enabled:
            _SHARED_DECISIONS[
                (self._schema_token, self.use_repair_rule, query_id, view_id)
            ] = decision

    def absorb_decisions(self, decisions: Mapping[Tuple[int, int], bool]) -> None:
        """Merge a worker's decision-cache delta (see :meth:`record_decision`)."""
        for (query_id, view_id), decision in decisions.items():
            self.record_decision(query_id, view_id, decision)

    # -- basic decisions -------------------------------------------------------

    def subsumes(self, query: Concept, view: Concept) -> bool:
        """``True`` iff every instance of ``query`` is an instance of ``view`` in every Σ-state."""
        normalized_query = normalize_concept(query)
        normalized_view = normalize_concept(view)
        key = (concept_id(normalized_query), concept_id(normalized_view))
        self._checks += 1
        if self._cache_enabled and key in self._cache:
            self._cache_hits += 1
            return self._cache[key]
        shared_key = (self._schema_token, self.use_repair_rule) + key
        if self._shared_cache_enabled and shared_key in _SHARED_DECISIONS:
            self._shared_cache_hits += 1
            decision = _SHARED_DECISIONS[shared_key]
            if self._cache_enabled:
                self._cache[key] = decision
            return decision
        if self.signature_excludes(normalized_query, normalized_view):
            # Only an unsatisfiable query can be subsumed by a view whose
            # signature exceeds query + schema; one memoized probe decides.
            self._signature_rejections += 1
            decision = not self._query_satisfiable(normalized_query)
        else:
            decision = decide_subsumption(
                normalized_query,
                normalized_view,
                self.schema,
                use_repair_rule=self.use_repair_rule,
                keep_trace=False,
                naive=self.naive,
            ).subsumed
        if self._cache_enabled:
            self._cache[key] = decision
        if self._shared_cache_enabled:
            _SHARED_DECISIONS[shared_key] = decision
        return decision

    def explain(self, query: Concept, view: Concept) -> SubsumptionResult:
        """The full :class:`SubsumptionResult` (trace, statistics, countermodel)."""
        return decide_subsumption(
            query,
            view,
            self.schema,
            use_repair_rule=self.use_repair_rule,
            keep_trace=True,
            naive=self.naive,
        )

    def is_satisfiable(self, concept: Concept) -> bool:
        """Σ-satisfiability: ``False`` iff the completion of ``concept`` contains a clash.

        In ``QL`` with ``SL`` schemas the only sources of unsatisfiability are
        the Unique Name Assumption clashes of Section 4.2, so a concept is
        unsatisfiable exactly when it is subsumed by an arbitrary fresh
        primitive concept via a clash.
        """
        from ..concepts.syntax import Primitive

        probe = Primitive("__repro_unsatisfiability_probe__")
        result = decide_subsumption(
            concept,
            probe,
            self.schema,
            use_repair_rule=self.use_repair_rule,
            keep_trace=False,
            naive=self.naive,
        )
        return not result.clashes

    def equivalent(self, left: Concept, right: Concept) -> bool:
        """Mutual Σ-subsumption."""
        return self.subsumes(left, right) and self.subsumes(right, left)

    # -- classification ---------------------------------------------------------

    def classify(self, concepts: Mapping[str, Concept]) -> Dict[str, List[str]]:
        """Compute the subsumption hierarchy among named concepts.

        Returns, for every name, the list of *direct* subsumers (most specific
        named concepts that strictly subsume it).  This mirrors how OODB view
        mechanisms integrate virtual classes into the class hierarchy
        (Section 5 of the paper).
        """
        names = sorted(concepts)
        subsumers: Dict[str, set] = {name: set() for name in names}
        for name in names:
            for other in names:
                if name == other:
                    continue
                if self.subsumes(concepts[name], concepts[other]):
                    subsumers[name].add(other)
        direct: Dict[str, List[str]] = {}
        for name in names:
            candidates = subsumers[name]
            redundant = set()
            for candidate in candidates:
                # candidate is redundant if some other subsumer is below it.
                for other in candidates:
                    if other != candidate and candidate in subsumers[other]:
                        # other ⊑ candidate, so candidate is not a *direct* parent
                        # unless they are mutually subsuming (equivalent).
                        if other not in subsumers.get(candidate, set()):
                            redundant.add(candidate)
            direct[name] = sorted(candidates - redundant)
        return direct

    # -- statistics ----------------------------------------------------------------

    @property
    def statistics(self) -> Dict[str, int]:
        """Counters: checks asked, cache hits, signature-filter short-circuits."""
        return {
            "checks": self._checks,
            "cache_hits": self._cache_hits,
            "shared_cache_hits": self._shared_cache_hits,
            "cache_size": len(self._cache),
            "signature_rejections": self._signature_rejections,
        }

    def clear_cache(self) -> None:
        """Drop this checker's memoized decisions (e.g. after changing the schema).

        The process-wide shared decision cache is left intact (its entries
        are keyed on schema identity and stay valid); use
        :func:`clear_shared_decision_cache` to drop that one too.
        """
        self._cache.clear()
        self._signatures.clear()
        self._satisfiable.clear()
        self._schema_token = _schema_token(self.schema)
        self._schema_concepts = self.schema.concept_names()
        self._schema_attributes = self.schema.attribute_names()
