"""The public facade: :class:`SubsumptionChecker`.

The checker bundles a schema with the completion engine configuration and
offers the operations a query optimizer needs:

* :meth:`SubsumptionChecker.subsumes` -- the boolean test ``C ⊑_Σ D``,
* :meth:`SubsumptionChecker.explain` -- the full result with trace and
  countermodel,
* :meth:`SubsumptionChecker.is_satisfiable` -- Σ-satisfiability of a concept
  (``C`` is unsatisfiable iff its completion contains a clash),
* :meth:`SubsumptionChecker.equivalent` -- mutual subsumption,
* :meth:`SubsumptionChecker.classify` -- insert a set of named concepts into
  their subsumption hierarchy (the "virtual class integration" of related
  OODB view mechanisms discussed in Section 5).

A small memoization cache keyed by the concept pair avoids repeating work
when the optimizer checks the same query against many views that share
sub-expressions, or re-checks a query later.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..calculus.subsume import SubsumptionResult, decide_subsumption
from ..concepts.normalize import normalize_concept
from ..concepts.schema import Schema
from ..concepts.syntax import Concept

__all__ = ["SubsumptionChecker"]


class SubsumptionChecker:
    """Decides Σ-subsumption between ``QL`` concepts for a fixed schema ``Σ``."""

    def __init__(
        self,
        schema: Optional[Schema] = None,
        *,
        use_repair_rule: bool = True,
        cache: bool = True,
    ) -> None:
        self.schema = schema if schema is not None else Schema.empty()
        self.use_repair_rule = use_repair_rule
        self._cache_enabled = cache
        self._cache: Dict[Tuple[Concept, Concept], bool] = {}
        self._checks = 0
        self._cache_hits = 0

    # -- basic decisions -------------------------------------------------------

    def subsumes(self, query: Concept, view: Concept) -> bool:
        """``True`` iff every instance of ``query`` is an instance of ``view`` in every Σ-state."""
        key = (normalize_concept(query), normalize_concept(view))
        self._checks += 1
        if self._cache_enabled and key in self._cache:
            self._cache_hits += 1
            return self._cache[key]
        decision = decide_subsumption(
            key[0], key[1], self.schema, use_repair_rule=self.use_repair_rule, keep_trace=False
        ).subsumed
        if self._cache_enabled:
            self._cache[key] = decision
        return decision

    def explain(self, query: Concept, view: Concept) -> SubsumptionResult:
        """The full :class:`SubsumptionResult` (trace, statistics, countermodel)."""
        return decide_subsumption(
            query, view, self.schema, use_repair_rule=self.use_repair_rule, keep_trace=True
        )

    def is_satisfiable(self, concept: Concept) -> bool:
        """Σ-satisfiability: ``False`` iff the completion of ``concept`` contains a clash.

        In ``QL`` with ``SL`` schemas the only sources of unsatisfiability are
        the Unique Name Assumption clashes of Section 4.2, so a concept is
        unsatisfiable exactly when it is subsumed by an arbitrary fresh
        primitive concept via a clash.
        """
        from ..concepts.syntax import Primitive

        probe = Primitive("__repro_unsatisfiability_probe__")
        result = decide_subsumption(
            concept, probe, self.schema, use_repair_rule=self.use_repair_rule, keep_trace=False
        )
        return not result.clashes

    def equivalent(self, left: Concept, right: Concept) -> bool:
        """Mutual Σ-subsumption."""
        return self.subsumes(left, right) and self.subsumes(right, left)

    # -- classification ---------------------------------------------------------

    def classify(self, concepts: Mapping[str, Concept]) -> Dict[str, List[str]]:
        """Compute the subsumption hierarchy among named concepts.

        Returns, for every name, the list of *direct* subsumers (most specific
        named concepts that strictly subsume it).  This mirrors how OODB view
        mechanisms integrate virtual classes into the class hierarchy
        (Section 5 of the paper).
        """
        names = sorted(concepts)
        subsumers: Dict[str, set] = {name: set() for name in names}
        for name in names:
            for other in names:
                if name == other:
                    continue
                if self.subsumes(concepts[name], concepts[other]):
                    subsumers[name].add(other)
        direct: Dict[str, List[str]] = {}
        for name in names:
            candidates = subsumers[name]
            redundant = set()
            for candidate in candidates:
                # candidate is redundant if some other subsumer is below it.
                for other in candidates:
                    if other != candidate and candidate in subsumers[other]:
                        # other ⊑ candidate, so candidate is not a *direct* parent
                        # unless they are mutually subsuming (equivalent).
                        if other not in subsumers.get(candidate, set()):
                            redundant.add(candidate)
            direct[name] = sorted(candidates - redundant)
        return direct

    # -- statistics ----------------------------------------------------------------

    @property
    def statistics(self) -> Dict[str, int]:
        """Counters: how many checks were asked and how many hit the cache."""
        return {
            "checks": self._checks,
            "cache_hits": self._cache_hits,
            "cache_size": len(self._cache),
        }

    def clear_cache(self) -> None:
        """Drop all memoized decisions (e.g. after changing the schema)."""
        self._cache.clear()
