"""Public facade of the reproduction: checker and errors."""

from .checker import SubsumptionChecker, clear_shared_decision_cache
from .errors import NonStructuralViewError, ReproError, UnsupportedQueryError

__all__ = [
    "SubsumptionChecker",
    "clear_shared_decision_cache",
    "ReproError",
    "UnsupportedQueryError",
    "NonStructuralViewError",
]
