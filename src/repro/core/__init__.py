"""Public facade of the reproduction: checker and errors."""

from .checker import SubsumptionChecker
from .errors import NonStructuralViewError, ReproError, UnsupportedQueryError

__all__ = [
    "SubsumptionChecker",
    "ReproError",
    "UnsupportedQueryError",
    "NonStructuralViewError",
]
