"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that fully offline environments without the ``wheel`` package can still
perform an editable install via ``python setup.py develop`` (modern
environments should simply run ``pip install -e .``).
"""

from setuptools import setup

setup()
