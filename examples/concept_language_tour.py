"""A tour of the abstract languages SL and QL and of the calculus internals.

Shows, without any database, how to

* define a schema with the builder DSL and write concepts directly in QL,
* normalize path agreements (the ∃p ≐ q  ⇒  ∃p' ≐ ε rewriting of Section 4),
* inspect the derivation trace and the canonical countermodel,
* translate concepts to first-order logic (Table 1) and to conjunctive
  queries (Section 5),
* use the extensions of Section 4.4 (variables on paths, language L).

Run with:  python examples/concept_language_tour.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines import concept_to_cq, cq_contained_in
from repro.calculus import decide_subsumption, format_trace
from repro.concepts import builders as b
from repro.concepts.normalize import normalize_concept
from repro.extensions import (
    LAnd,
    LExists,
    LForall,
    LPrimitive,
    VariableSingleton,
    l_subsumes,
    subsumes_with_variables,
)
from repro.fol import Var, concept_to_formula
from repro.semantics.sigma import is_sigma_interpretation


def main() -> None:
    # -- 1. schema and concepts -------------------------------------------------
    schema = b.schema(
        b.isa("Employee", "Person"),
        b.typed("Employee", "works_on", "Project"),
        b.necessary("Employee", "works_on"),
        b.functional("Employee", "manager"),
        b.attribute_typing("manager", "Employee", "Manager"),
        b.isa("Manager", "Employee"),
    )
    query = b.conjoin(
        b.concept("Employee"),
        b.agreement(
            b.path(("manager", b.top()), ("works_on", b.concept("Project"))),
            b.path(("works_on", b.concept("Project"))),
        ),
    )
    view = b.conjoin(b.concept("Person"), b.exists(("works_on", b.concept("Project"))))
    print("query:", query)
    print("view :", view)
    print("normalized query:", normalize_concept(query))
    print()

    # -- 2. subsumption with trace and countermodel --------------------------------
    result = decide_subsumption(query, view, schema)
    print(f"query ⊑_Σ view: {result.subsumed} "
          f"({result.statistics.total_applications} rule applications)")
    print(format_trace(result.trace[:6]), "\n  ...")
    reverse = decide_subsumption(view, query, schema)
    countermodel = reverse.countermodel()
    print(f"view ⊑_Σ query: {reverse.subsumed}; countermodel is a Σ-model: "
          f"{is_sigma_interpretation(countermodel, schema)}")
    print()

    # -- 3. logical translations ------------------------------------------------------
    print("FOL translation of the view (Table 1):")
    print("   ", concept_to_formula(view, Var("x")))
    cq = concept_to_cq(query)
    print("conjunctive query form of the query (Section 5):")
    print("   ", cq)
    print("CM containment (empty schema):", cq_contained_in(cq, concept_to_cq(view)))
    print()

    # -- 4. extensions of Section 4.4 ----------------------------------------------------
    coref = b.conjoin(
        b.concept("Employee"),
        b.exists(("mentor", VariableSingleton("m"))),
        b.exists(("manager", VariableSingleton("m"))),
    )
    print("variables on paths (skolemized):",
          subsumes_with_variables(coref, b.exists("manager"), schema))
    a, bee = LPrimitive("A"), LPrimitive("B")
    print("language L (∃p.A ⊓ ∀p.B ⊑ ∃p.(A⊓B)):",
          l_subsumes(LAnd(LExists("p", a), LForall("p", bee)), LExists("p", LAnd(a, bee))))


if __name__ == "__main__":
    main()
