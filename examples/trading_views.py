"""Materialized-view reuse in an order-processing system (third domain scenario).

A trading company's shipping tool materializes ``LocallyHandledCustomers``
(customers whose orders are handled by a clerk responsible for their
region).  The quality-management tool later asks the far more selective
``PremiumLocalFragile`` query; the optimizer detects the subsumption and
evaluates it against the stored view, and incremental view maintenance keeps
the view usable as new orders arrive.

Run with:  python examples/trading_views.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.optimizer import SemanticQueryOptimizer
from repro.workloads.trading import generate_trading_state, trading_dl_schema


def main() -> None:
    dl = trading_dl_schema()
    state = generate_trading_state(customers=250, orders=500, products=100, seed=31)
    optimizer = SemanticQueryOptimizer(dl)
    print(f"trading database: {len(state)} objects")

    view = optimizer.register_view(dl.query_classes["LocallyHandledCustomers"], state)
    print(f"materialized LocallyHandledCustomers: {view.size} customers stored")
    print()

    query = dl.query_classes["PremiumLocalFragile"]
    outcome = optimizer.optimize_and_execute(query, state)
    print("PremiumLocalFragile (premium customers with an urgent, locally handled,")
    print("fragile-product order):")
    print(f"    plan: {outcome.plan.description}")
    print(f"    candidates examined: {outcome.candidates_examined} "
          f"instead of {outcome.baseline_candidates}")
    print(f"    answers: {len(outcome.answers)}")
    print(f"    identical to the conventional evaluation: "
          f"{outcome.answers == optimizer.evaluate_unoptimized(query, state)}")
    print()

    # --- incremental maintenance: a new customer with a local urgent order --------
    state.add_object("customer_new", "Customer", "PremiumCustomer", "Party")
    state.add_object("customer_new_name", "String")
    state.set_attribute("customer_new", "name", "customer_new_name")
    state.set_attribute("customer_new", "located_in", "region0")
    state.add_object("order_new", "Order", "UrgentOrder")
    state.set_attribute("customer_new", "places", "order_new")
    clerk = next(
        clerk
        for clerk in state.extent("Clerk")
        if "region0" in state.attribute_values(clerk, "responsible_for")
    )
    state.set_attribute("order_new", "handled_by", clerk)
    fragile = sorted(state.extent("FragileProduct"))[0]
    state.set_attribute("order_new", "contains", fragile)
    optimizer.catalog.notify_object_added("customer_new", state)
    print("after inserting customer_new with a local urgent fragile order:")
    print(f"    customer_new in the materialized view: {'customer_new' in view.extent}")
    outcome = optimizer.optimize_and_execute(query, state)
    print(f"    PremiumLocalFragile now has {len(outcome.answers)} answers "
          f"(includes customer_new: {'customer_new' in outcome.answers})")


if __name__ == "__main__":
    main()
