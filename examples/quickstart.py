"""Quickstart: the paper's worked example in a dozen lines.

Builds the medical schema of Figure 1/6, the query class ``QueryPatient``
(Figure 3) and the view ``ViewPatient`` (Figure 5), checks the subsumption
``C_Q ⊑_Σ D_V`` and prints the Figure 11 style derivation.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import SubsumptionChecker
from repro.calculus import decide_subsumption, format_result
from repro.workloads.medical import (
    medical_schema,
    query_patient_concept,
    view_patient_concept,
)


def main() -> None:
    schema = medical_schema()
    query = query_patient_concept()      # C_Q: male patients consulting a female
    view = view_patient_concept()        # D_V: patients consulting a specialist

    checker = SubsumptionChecker(schema)
    print("C_Q =", query)
    print("D_V =", view)
    print()
    print("C_Q ⊑_Σ D_V ?", checker.subsumes(query, view))
    print("D_V ⊑_Σ C_Q ?", checker.subsumes(view, query))
    print()

    # The full derivation, statistics and clash report (Figure 11).
    result = decide_subsumption(query, view, schema)
    print(format_result(result))


if __name__ == "__main__":
    main()
