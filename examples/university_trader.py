"""The "trader" scenario of Section 6 on a university information system.

Several cooperating tools (an advising dashboard, a course-planning tool,
an administration report) repeatedly ask overlapping queries.  The trader
memorizes the first answered query as a materialized view; later queries
are checked for subsumption against the remembered views and, on a hit,
answered from the stored extension.

Run with:  python examples/university_trader.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.optimizer import SemanticQueryOptimizer
from repro.workloads.university import generate_university_state, university_dl_schema


def main() -> None:
    dl = university_dl_schema()
    state = generate_university_state(students=200, professors=25, courses=40, seed=21)
    optimizer = SemanticQueryOptimizer(dl)

    print(f"university database: {len(state)} objects")
    print()

    # --- tool 1: advising dashboard asks the broad coreference query -----------
    broad = dl.query_classes["StudentsOfTheirAdvisor"]
    first_answers = optimizer.evaluate_unoptimized(broad, state)
    print(f"[advising]  StudentsOfTheirAdvisor evaluated conventionally: "
          f"{len(first_answers)} answers")
    # The trader memorizes it as a materialized view.
    optimizer.register_view(broad, state)
    optimizer.register_view(dl.query_classes["NamedStudents"], state)
    print("[trader]    memorized StudentsOfTheirAdvisor and NamedStudents as views")
    print()

    # --- tool 2 and 3: more specific queries arrive ------------------------------
    for tool, query_name in (
        ("course planner", "GradsTaughtByAdvisor"),
        ("administration", "AdvisedGradStudents"),
    ):
        query = dl.query_classes[query_name]
        plan = optimizer.plan(query)
        outcome = optimizer.execute(plan, state)
        print(f"[{tool}]  {query_name}:")
        print(f"    plan: {plan.description}")
        print(f"    candidates examined: {outcome.candidates_examined} "
              f"(a full scan would examine {outcome.baseline_candidates})")
        print(f"    answers: {len(outcome.answers)}; "
              f"identical to conventional evaluation: "
              f"{outcome.answers == optimizer.evaluate_unoptimized(query, state)}")
        print()

    stats = optimizer.statistics
    print(
        f"trader summary: {stats.queries_optimized} queries routed, "
        f"hit rate {stats.hit_rate:.0%}, "
        f"{stats.subsumption_checks} subsumption checks, "
        f"candidate reduction {stats.candidate_reduction:.0%}"
    )


if __name__ == "__main__":
    main()
