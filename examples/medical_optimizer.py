"""Semantic query optimization on the medical database (Sections 1, 3.2).

The script parses the concrete DL source of the paper's medical example,
builds a small hospital database, materializes ``ViewPatient``, and then
shows how the optimizer answers ``QueryPatient`` by filtering the stored
view extension instead of scanning every patient -- and that the answers are
exactly the same as the conventional evaluation (Proposition 3.1).

Run with:  python examples/medical_optimizer.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.database import DatabaseState
from repro.dl import parse_schema
from repro.optimizer import SemanticQueryOptimizer
from repro.workloads.medical import MEDICAL_DL_SOURCE, medical_schema


def build_hospital(dl) -> DatabaseState:
    """A small but non-trivial hospital: 3 doctors, 40 patients."""
    state = DatabaseState(medical_schema())
    state.add_object("flu", "Disease", "Topic")
    state.add_object("migraine", "Disease", "Topic")
    state.add_object("asthma", "Disease", "Topic")
    state.add_object("Aspirin", "Drug")
    state.add_object("inhaler", "Drug")

    doctors = [("dr_lee", "flu", True), ("dr_kim", "migraine", True), ("dr_ross", "asthma", False)]
    for name, disease, female in doctors:
        state.add_object(name, "Doctor", "Person")
        if female:
            state.assert_membership(name, "Female")
        state.add_object(f"{name}_name", "String")
        state.set_attribute(name, "name", f"{name}_name")
        state.set_attribute(name, "skilled_in", disease)

    diseases = ["flu", "migraine", "asthma"]
    for index in range(40):
        patient = f"patient{index}"
        state.add_object(patient, "Patient", "Person")
        if index % 2 == 0:
            state.assert_membership(patient, "Male")
        state.add_object(f"{patient}_name", "String")
        state.set_attribute(patient, "name", f"{patient}_name")
        disease = diseases[index % 3]
        state.set_attribute(patient, "suffers", disease)
        # Two thirds of the patients consult the specialist for their disease.
        if index % 3 != 2:
            specialist = next(d for d, skill, _ in doctors if skill == disease)
            state.set_attribute(patient, "consults", specialist)
        else:
            state.set_attribute(patient, "consults", "dr_ross")
        if index % 4 == 0:
            state.set_attribute(patient, "takes", "Aspirin")
        if index % 5 == 0:
            state.set_attribute(patient, "takes", "inhaler")

    state.apply_inverse_synonyms(dl)
    return state


def main() -> None:
    dl = parse_schema(MEDICAL_DL_SOURCE)
    state = build_hospital(dl)
    print(f"database: {len(state)} objects, consistent = {state.is_consistent()}")

    optimizer = SemanticQueryOptimizer(dl)
    view = optimizer.register_view(dl.query_classes["ViewPatient"], state)
    print(f"materialized ViewPatient: {view.size} stored answers")

    query = dl.query_classes["QueryPatient"]
    plan = optimizer.plan(query)
    print(f"plan for QueryPatient: {plan.description}")

    outcome = optimizer.execute(plan, state)
    baseline = optimizer.evaluate_unoptimized(query, state)
    print(f"candidates examined:   {outcome.candidates_examined}")
    print(f"baseline candidates:   {outcome.baseline_candidates}")
    print(f"answers ({len(outcome.answers)}): {sorted(outcome.answers)[:6]} ...")
    print(f"same answers as the conventional evaluation: {outcome.answers == baseline}")
    print()
    stats = optimizer.statistics
    print(
        f"optimizer statistics: {stats.queries_optimized} queries, "
        f"hit rate {stats.hit_rate:.0%}, candidate reduction {stats.candidate_reduction:.0%}"
    )


if __name__ == "__main__":
    main()
